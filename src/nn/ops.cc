#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/kernel_hooks.h"

namespace gnn4tdl::ops {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  GNN4TDL_CHECK_EQ(a.rows(), b.rows());
  GNN4TDL_CHECK_EQ(a.cols(), b.cols());
}

// Row-block grain for the row-wise activation/normalization/loss kernels:
// each chunk holds roughly this many scalar ops. Forward and backward share
// the same primitives and grains, so training and serving scale alike.
size_t RowGrain(size_t cost_per_row) {
  constexpr size_t kFlopGrain = 65536;
  return std::max<size_t>(1, kFlopGrain / std::max<size_t>(cost_per_row, 1));
}

double Softplus(double z) {
  // Numerically stable log(1 + exp(z)).
  return z > 0 ? z + std::log1p(std::exp(-z)) : std::log1p(std::exp(z));
}

double StableSigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  TapeOpScope op_scope("Add");
  CheckSameShape(a, b);
  return Tensor::FromOp(a.value() + b.value(), {a, b}, [a, b](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(g);
    if (b.requires_grad()) b.AccumulateGrad(g);
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  TapeOpScope op_scope("Sub");
  CheckSameShape(a, b);
  return Tensor::FromOp(a.value() - b.value(), {a, b}, [a, b](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(g);
    if (b.requires_grad()) b.AccumulateGrad(-g);
  });
}

Tensor CwiseMul(const Tensor& a, const Tensor& b) {
  TapeOpScope op_scope("CwiseMul");
  CheckSameShape(a, b);
  return Tensor::FromOp(a.value().CwiseMul(b.value()), {a, b},
                        [a, b](const Matrix& g) {
                          if (a.requires_grad())
                            a.AccumulateGrad(g.CwiseMul(b.value()));
                          if (b.requires_grad())
                            b.AccumulateGrad(g.CwiseMul(a.value()));
                        });
}

Tensor Scale(const Tensor& a, double s) {
  TapeOpScope op_scope("Scale");
  return Tensor::FromOp(a.value() * s, {a}, [a, s](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(g * s);
  });
}

Tensor AddScalar(const Tensor& a, double c) {
  TapeOpScope op_scope("AddScalar");
  return Tensor::FromOp(a.value().Map([c](double v) { return v + c; }), {a},
                        [a](const Matrix& g) {
                          if (a.requires_grad()) a.AccumulateGrad(g);
                        });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& b) {
  TapeOpScope op_scope("AddRowBroadcast");
  GNN4TDL_CHECK_EQ(b.rows(), 1u);
  GNN4TDL_CHECK_EQ(a.cols(), b.cols());
  Matrix out = a.value();
  for (size_t r = 0; r < out.rows(); ++r)
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) += b.value()(0, c);
  return Tensor::FromOp(std::move(out), {a, b}, [a, b](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(g);
    if (b.requires_grad()) b.AccumulateGrad(g.ColSum());
  });
}

Tensor MulColBroadcast(const Tensor& a, const Tensor& w) {
  TapeOpScope op_scope("MulColBroadcast");
  GNN4TDL_CHECK_EQ(w.cols(), 1u);
  GNN4TDL_CHECK_EQ(a.rows(), w.rows());
  Matrix out = a.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    double s = w.value()(r, 0);
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) *= s;
  }
  return Tensor::FromOp(std::move(out), {a, w}, [a, w](const Matrix& g) {
    if (a.requires_grad()) {
      Matrix ga = g;
      for (size_t r = 0; r < ga.rows(); ++r) {
        double s = w.value()(r, 0);
        for (size_t c = 0; c < ga.cols(); ++c) ga(r, c) *= s;
      }
      a.AccumulateGrad(ga);
    }
    if (w.requires_grad()) {
      Matrix gw(w.rows(), 1);
      for (size_t r = 0; r < g.rows(); ++r) {
        double s = 0.0;
        for (size_t c = 0; c < g.cols(); ++c) s += g(r, c) * a.value()(r, c);
        gw(r, 0) = s;
      }
      w.AccumulateGrad(gw);
    }
  });
}

Tensor Relu(const Tensor& a) {
  TapeOpScope op_scope("Relu");
  return Tensor::FromOp(a.value().Map([](double v) { return v > 0 ? v : 0.0; }),
                        {a}, [a](const Matrix& g) {
                          if (!a.requires_grad()) return;
                          Matrix ga = g;
                          ParallelFor(0, ga.rows(), RowGrain(ga.cols()),
                                      [&](size_t lo, size_t hi) {
                            for (size_t i = lo; i < hi; ++i)
                              for (size_t j = 0; j < ga.cols(); ++j)
                                if (a.value()(i, j) <= 0) ga(i, j) = 0.0;
                          });
                          a.AccumulateGrad(ga);
                        });
}

Tensor Abs(const Tensor& a) {
  TapeOpScope op_scope("Abs");
  return Tensor::FromOp(a.value().Map([](double v) { return std::fabs(v); }),
                        {a}, [a](const Matrix& g) {
                          if (!a.requires_grad()) return;
                          Matrix ga = g;
                          for (size_t i = 0; i < ga.rows(); ++i)
                            for (size_t j = 0; j < ga.cols(); ++j) {
                              double v = a.value()(i, j);
                              ga(i, j) *= v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0);
                            }
                          a.AccumulateGrad(ga);
                        });
}

Tensor LeakyRelu(const Tensor& a, double alpha) {
  TapeOpScope op_scope("LeakyRelu");
  return Tensor::FromOp(
      a.value().Map([alpha](double v) { return v > 0 ? v : alpha * v; }), {a},
      [a, alpha](const Matrix& g) {
        if (!a.requires_grad()) return;
        Matrix ga = g;
        for (size_t i = 0; i < ga.rows(); ++i)
          for (size_t j = 0; j < ga.cols(); ++j)
            if (a.value()(i, j) <= 0) ga(i, j) *= alpha;
        a.AccumulateGrad(ga);
      });
}

Tensor Sigmoid(const Tensor& a) {
  TapeOpScope op_scope("Sigmoid");
  Matrix out = a.value().Map(StableSigmoid);
  return Tensor::FromOp(out, {a}, [a, out](const Matrix& g) {
    if (!a.requires_grad()) return;
    Matrix ga = g;
    ParallelFor(0, ga.rows(), RowGrain(ga.cols()), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i)
        for (size_t j = 0; j < ga.cols(); ++j) {
          double s = out(i, j);
          ga(i, j) *= s * (1.0 - s);
        }
    });
    a.AccumulateGrad(ga);
  });
}

Tensor Tanh(const Tensor& a) {
  TapeOpScope op_scope("Tanh");
  Matrix out = a.value().Map([](double v) { return std::tanh(v); });
  return Tensor::FromOp(out, {a}, [a, out](const Matrix& g) {
    if (!a.requires_grad()) return;
    Matrix ga = g;
    ParallelFor(0, ga.rows(), RowGrain(ga.cols()), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i)
        for (size_t j = 0; j < ga.cols(); ++j) {
          double t = out(i, j);
          ga(i, j) *= 1.0 - t * t;
        }
    });
    a.AccumulateGrad(ga);
  });
}

Tensor Exp(const Tensor& a) {
  TapeOpScope op_scope("Exp");
  Matrix out = a.value().Map([](double v) { return std::exp(v); });
  return Tensor::FromOp(out, {a}, [a, out](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(g.CwiseMul(out));
  });
}

Tensor Log(const Tensor& a) {
  TapeOpScope op_scope("Log");
  return Tensor::FromOp(a.value().Map([](double v) { return std::log(v); }),
                        {a}, [a](const Matrix& g) {
                          if (!a.requires_grad()) return;
                          a.AccumulateGrad(g.CwiseDiv(a.value()));
                        });
}

Tensor Dropout(const Tensor& a, double p, Rng& rng, bool training) {
  TapeOpScope op_scope("Dropout");
  if (!training || p <= 0.0) return a;
  GNN4TDL_CHECK_LT(p, 1.0);
  Matrix mask(a.rows(), a.cols());
  const double keep_scale = 1.0 / (1.0 - p);
  for (size_t i = 0; i < mask.rows(); ++i)
    for (size_t j = 0; j < mask.cols(); ++j)
      mask(i, j) = rng.Bernoulli(p) ? 0.0 : keep_scale;
  return Tensor::FromOp(a.value().CwiseMul(mask), {a},
                        [a, mask](const Matrix& g) {
                          if (a.requires_grad()) a.AccumulateGrad(g.CwiseMul(mask));
                        });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  TapeOpScope op_scope("ConcatCols");
  GNN4TDL_CHECK_EQ(a.rows(), b.rows());
  const size_t ac = a.cols();
  const size_t bc = b.cols();
  return Tensor::FromOp(
      a.value().ConcatCols(b.value()), {a, b}, [a, b, ac, bc](const Matrix& g) {
        if (a.requires_grad()) {
          Matrix ga(g.rows(), ac);
          for (size_t r = 0; r < g.rows(); ++r)
            std::copy(g.row_data(r), g.row_data(r) + ac, ga.row_data(r));
          a.AccumulateGrad(ga);
        }
        if (b.requires_grad()) {
          Matrix gb(g.rows(), bc);
          for (size_t r = 0; r < g.rows(); ++r)
            std::copy(g.row_data(r) + ac, g.row_data(r) + ac + bc,
                      gb.row_data(r));
          b.AccumulateGrad(gb);
        }
      });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  TapeOpScope op_scope("ConcatRows");
  GNN4TDL_CHECK(!parts.empty());
  const size_t cols = parts[0].cols();
  size_t total_rows = 0;
  for (const Tensor& p : parts) {
    GNN4TDL_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  Matrix out(total_rows, cols);
  size_t row = 0;
  std::vector<size_t> offsets;
  for (const Tensor& p : parts) {
    offsets.push_back(row);
    std::copy(p.value().data(), p.value().data() + p.rows() * cols,
              out.row_data(row));
    row += p.rows();
  }
  std::vector<Tensor> parents = parts;
  return Tensor::FromOp(std::move(out), parts,
                        [parents, offsets, cols](const Matrix& g) {
                          for (size_t i = 0; i < parents.size(); ++i) {
                            const Tensor& p = parents[i];
                            if (!p.requires_grad()) continue;
                            Matrix gp(p.rows(), cols);
                            std::copy(g.row_data(offsets[i]),
                                      g.row_data(offsets[i]) + p.rows() * cols,
                                      gp.data());
                            p.AccumulateGrad(gp);
                          }
                        });
}

Tensor Reshape(const Tensor& a, size_t new_rows, size_t new_cols) {
  TapeOpScope op_scope("Reshape");
  const size_t old_rows = a.rows();
  const size_t old_cols = a.cols();
  return Tensor::FromOp(a.value().Reshape(new_rows, new_cols), {a},
                        [a, old_rows, old_cols](const Matrix& g) {
                          if (a.requires_grad())
                            a.AccumulateGrad(g.Reshape(old_rows, old_cols));
                        });
}

Tensor Transpose(const Tensor& a) {
  TapeOpScope op_scope("Transpose");
  return Tensor::FromOp(a.value().Transpose(), {a}, [a](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(g.Transpose());
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TapeOpScope op_scope("MatMul");
  GNN4TDL_CHECK_EQ(a.cols(), b.rows());
  return Tensor::FromOp(a.value().Matmul(b.value()), {a, b},
                        [a, b](const Matrix& g) {
                          if (a.requires_grad())
                            a.AccumulateGrad(g.MatmulTranspose(b.value()));
                          if (b.requires_grad())
                            b.AccumulateGrad(a.value().TransposeMatmul(g));
                        });
}

Tensor SpMM(const SparseMatrix& sp, const Tensor& x) {
  TapeOpScope op_scope("SpMM");
  GNN4TDL_CHECK_EQ(sp.cols(), x.rows());
  // Copy the sparse operator into the closure so the tape owns it; CSR copies
  // are cheap relative to training and this removes lifetime hazards.
  SparseMatrix sp_copy = sp;
  return Tensor::FromOp(sp.Multiply(x.value()), {x},
                        [sp_copy, x](const Matrix& g) {
                          if (x.requires_grad())
                            x.AccumulateGrad(sp_copy.TransposeMultiply(g));
                        });
}

Tensor WeightedSpMM(const Tensor& weights, const Tensor& x,
                    const SparseMatrix& pattern,
                    const std::vector<size_t>& slot,
                    const std::vector<size_t>& src,
                    const std::vector<size_t>& dst) {
  TapeOpScope op_scope("WeightedSpMM");
  const size_t num_edges = slot.size();
  GNN4TDL_CHECK_EQ(weights.rows(), num_edges);
  GNN4TDL_CHECK_EQ(weights.cols(), 1u);
  GNN4TDL_CHECK_EQ(pattern.nnz(), num_edges);
  GNN4TDL_CHECK_EQ(src.size(), num_edges);
  GNN4TDL_CHECK_EQ(dst.size(), num_edges);
  GNN4TDL_CHECK_EQ(x.rows(), pattern.cols());

  // Stamp the current edge weights into the fixed sparsity pattern; the copy
  // is then owned by the tape closure (the backward pass needs A^T).
  SparseMatrix a = pattern;
  std::vector<double>& values = a.mutable_values();
  const Matrix& w = weights.value();
  for (size_t e = 0; e < num_edges; ++e) values[slot[e]] = w.row_data(e)[0];

  std::vector<size_t> src_copy = src;
  std::vector<size_t> dst_copy = dst;
  return Tensor::FromOp(
      a.Multiply(x.value()), {weights, x},
      [a, weights, x, src_copy, dst_copy](const Matrix& g) {
        if (x.requires_grad()) x.AccumulateGrad(a.TransposeMultiply(g));
        if (!weights.requires_grad()) return;
        const Matrix& xv = x.value();
        const size_t cols = xv.cols();
        Matrix gw(src_copy.size(), 1);
        // Edges are independent: disjoint writes, deterministic chunking.
        ParallelFor(0, src_copy.size(), 256, [&](size_t begin, size_t end) {
          for (size_t e = begin; e < end; ++e) {
            const double* gr = g.row_data(dst_copy[e]);
            const double* xr = xv.row_data(src_copy[e]);
            double dot = 0.0;
            for (size_t c = 0; c < cols; ++c) dot += gr[c] * xr[c];
            gw.row_data(e)[0] = dot;
          }
        });
        weights.AccumulateGrad(gw);
      });
}

Tensor GatherRows(const Tensor& x, const std::vector<size_t>& idx) {
  TapeOpScope op_scope("GatherRows");
  Matrix out(idx.size(), x.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    GNN4TDL_CHECK_LT(idx[i], x.rows());
    std::copy(x.value().row_data(idx[i]), x.value().row_data(idx[i]) + x.cols(),
              out.row_data(i));
  }
  std::vector<size_t> idx_copy = idx;
  const size_t n = x.rows();
  return Tensor::FromOp(std::move(out), {x},
                        [x, idx_copy, n](const Matrix& g) {
                          if (!x.requires_grad()) return;
                          Matrix gx(n, g.cols());
                          for (size_t i = 0; i < idx_copy.size(); ++i) {
                            double* dst = gx.row_data(idx_copy[i]);
                            const double* src = g.row_data(i);
                            for (size_t c = 0; c < g.cols(); ++c) dst[c] += src[c];
                          }
                          x.AccumulateGrad(gx);
                        });
}

Tensor ScatterAddRows(const Tensor& x, const std::vector<size_t>& idx,
                      size_t num_out) {
  TapeOpScope op_scope("ScatterAddRows");
  GNN4TDL_CHECK_EQ(idx.size(), x.rows());
  Matrix out(num_out, x.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    GNN4TDL_CHECK_LT(idx[i], num_out);
    double* dst = out.row_data(idx[i]);
    const double* src = x.value().row_data(i);
    for (size_t c = 0; c < x.cols(); ++c) dst[c] += src[c];
  }
  std::vector<size_t> idx_copy = idx;
  return Tensor::FromOp(std::move(out), {x}, [x, idx_copy](const Matrix& g) {
    if (!x.requires_grad()) return;
    Matrix gx(idx_copy.size(), g.cols());
    for (size_t i = 0; i < idx_copy.size(); ++i)
      std::copy(g.row_data(idx_copy[i]), g.row_data(idx_copy[i]) + g.cols(),
                gx.row_data(i));
    x.AccumulateGrad(gx);
  });
}

Tensor EdgeSoftmax(const Tensor& logits, const std::vector<size_t>& dst,
                   size_t num_groups) {
  TapeOpScope op_scope("EdgeSoftmax");
  // Forward and backward both delegate to the parallel segment-softmax
  // kernels in tensor/sparse.h, so the autograd path scales exactly like the
  // inference path. The op-level scope wraps the kernel-level
  // "segment_softmax" span so traces show the attention op as its parent.
  obs::KernelScope kernel("edge_softmax",
                          5.0 * static_cast<double>(dst.size()),
                          8.0 * (3.0 * dst.size() + 2.0 * num_groups));
  Matrix out = SegmentSoftmax(logits.value(), dst, num_groups);
  std::vector<size_t> dst_copy = dst;
  Matrix softmax = out;
  return Tensor::FromOp(
      std::move(out), {logits},
      [logits, dst_copy, softmax, num_groups](const Matrix& g) {
        if (!logits.requires_grad()) return;
        logits.AccumulateGrad(
            SegmentSoftmaxBackward(softmax, g, dst_copy, num_groups));
      });
}

Tensor RowL2Normalize(const Tensor& a, double eps) {
  TapeOpScope op_scope("RowL2Normalize");
  const size_t n = a.rows();
  const size_t d = a.cols();
  std::vector<double> norms(n);
  Matrix out(n, d);
  // Rows are independent: parallel row blocks, serial per-row loops.
  ParallelFor(0, n, RowGrain(2 * d), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      double s = 0.0;
      for (size_t c = 0; c < d; ++c) s += a.value()(r, c) * a.value()(r, c);
      norms[r] = std::max(std::sqrt(s), eps);
      for (size_t c = 0; c < d; ++c) out(r, c) = a.value()(r, c) / norms[r];
    }
  });
  Matrix normalized = out;
  return Tensor::FromOp(std::move(out), {a},
                        [a, normalized, norms](const Matrix& g) {
                          if (!a.requires_grad()) return;
                          Matrix ga(g.rows(), g.cols());
                          ParallelFor(0, g.rows(), RowGrain(2 * g.cols()),
                                      [&](size_t lo, size_t hi) {
                            for (size_t r = lo; r < hi; ++r) {
                              double dot = 0.0;
                              for (size_t c = 0; c < g.cols(); ++c)
                                dot += g(r, c) * normalized(r, c);
                              for (size_t c = 0; c < g.cols(); ++c)
                                ga(r, c) = (g(r, c) -
                                            dot * normalized(r, c)) /
                                           norms[r];
                            }
                          });
                          a.AccumulateGrad(ga);
                        });
}

Tensor LayerNormRows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                     double eps) {
  TapeOpScope op_scope("LayerNormRows");
  const size_t n = x.rows();
  const size_t d = x.cols();
  GNN4TDL_CHECK_EQ(gamma.rows(), 1u);
  GNN4TDL_CHECK_EQ(gamma.cols(), d);
  GNN4TDL_CHECK_EQ(beta.rows(), 1u);
  GNN4TDL_CHECK_EQ(beta.cols(), d);
  GNN4TDL_CHECK_GT(d, 0u);

  // Forward: cache the normalized values x_hat and the inverse stddevs.
  // Row-parallel; per-row statistics keep their serial accumulation order.
  Matrix x_hat(n, d);
  std::vector<double> inv_std(n);
  Matrix out(n, d);
  ParallelFor(0, n, RowGrain(4 * d), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      double mean = 0.0;
      for (size_t c = 0; c < d; ++c) mean += x.value()(r, c);
      mean /= static_cast<double>(d);
      double var = 0.0;
      for (size_t c = 0; c < d; ++c) {
        double centered = x.value()(r, c) - mean;
        var += centered * centered;
      }
      var /= static_cast<double>(d);
      inv_std[r] = 1.0 / std::sqrt(var + eps);
      for (size_t c = 0; c < d; ++c)
        x_hat(r, c) = (x.value()(r, c) - mean) * inv_std[r];
      for (size_t c = 0; c < d; ++c)
        out(r, c) = x_hat(r, c) * gamma.value()(0, c) + beta.value()(0, c);
    }
  });

  return Tensor::FromOp(
      std::move(out), {x, gamma, beta},
      [x, gamma, beta, x_hat, inv_std](const Matrix& g) {
        const size_t n = g.rows();
        const size_t d = g.cols();
        if (gamma.requires_grad()) {
          Matrix gg(1, d);
          for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < d; ++c) gg(0, c) += g(r, c) * x_hat(r, c);
          gamma.AccumulateGrad(gg);
        }
        if (beta.requires_grad()) {
          beta.AccumulateGrad(g.ColSum());
        }
        if (x.requires_grad()) {
          // dx = inv_std * (gy - mean(gy) - x_hat * mean(gy * x_hat)),
          // where gy = g * gamma (per column). Row-parallel like the forward;
          // the gamma/beta reductions above stay serial (they fold over rows
          // into a single 1 x d accumulator).
          Matrix gx(n, d);
          ParallelFor(0, n, RowGrain(6 * d), [&](size_t lo, size_t hi) {
            for (size_t r = lo; r < hi; ++r) {
              double mean_gy = 0.0, mean_gy_xhat = 0.0;
              for (size_t c = 0; c < d; ++c) {
                double gy = g(r, c) * gamma.value()(0, c);
                mean_gy += gy;
                mean_gy_xhat += gy * x_hat(r, c);
              }
              mean_gy /= static_cast<double>(d);
              mean_gy_xhat /= static_cast<double>(d);
              for (size_t c = 0; c < d; ++c) {
                double gy = g(r, c) * gamma.value()(0, c);
                gx(r, c) =
                    inv_std[r] * (gy - mean_gy - x_hat(r, c) * mean_gy_xhat);
              }
            }
          });
          x.AccumulateGrad(gx);
        }
      });
}

Tensor PairNormRows(const Tensor& x, double scale, double eps) {
  TapeOpScope op_scope("PairNormRows");
  const size_t n = x.rows();
  GNN4TDL_CHECK_GT(n, 0u);
  // Column centering: xc = x - 1 * col_mean. Composable from existing ops so
  // the backward comes for free.
  Tensor ones_col = Tensor::Constant(Matrix::Ones(n, 1));
  Tensor col_mean =
      ops::Scale(ops::MatMul(ops::Transpose(ones_col), x),
                 1.0 / static_cast<double>(n));       // 1 x d
  Tensor centered = ops::Sub(x, ops::MatMul(ones_col, col_mean));
  return ops::Scale(ops::RowL2Normalize(centered, eps), scale);
}

Tensor SegmentMeanRows(const Tensor& x, const std::vector<size_t>& seg,
                       size_t num_segments) {
  TapeOpScope op_scope("SegmentMeanRows");
  GNN4TDL_CHECK_EQ(seg.size(), x.rows());
  std::vector<double> counts(num_segments, 0.0);
  for (size_t s : seg) {
    GNN4TDL_CHECK_LT(s, num_segments);
    counts[s] += 1.0;
  }
  Matrix out(num_segments, x.cols());
  for (size_t i = 0; i < seg.size(); ++i) {
    double* dst = out.row_data(seg[i]);
    const double* src = x.value().row_data(i);
    for (size_t c = 0; c < x.cols(); ++c) dst[c] += src[c];
  }
  for (size_t s = 0; s < num_segments; ++s) {
    if (counts[s] == 0.0) continue;
    double* row = out.row_data(s);
    for (size_t c = 0; c < x.cols(); ++c) row[c] /= counts[s];
  }
  std::vector<size_t> seg_copy = seg;
  return Tensor::FromOp(std::move(out), {x},
                        [x, seg_copy, counts](const Matrix& g) {
                          if (!x.requires_grad()) return;
                          Matrix gx(seg_copy.size(), g.cols());
                          for (size_t i = 0; i < seg_copy.size(); ++i) {
                            const size_t s = seg_copy[i];
                            const double inv = 1.0 / counts[s];
                            const double* src = g.row_data(s);
                            double* dst = gx.row_data(i);
                            for (size_t c = 0; c < g.cols(); ++c)
                              dst[c] = src[c] * inv;
                          }
                          x.AccumulateGrad(gx);
                        });
}

Tensor SegmentMaxRows(const Tensor& x, const std::vector<size_t>& seg,
                      size_t num_segments) {
  TapeOpScope op_scope("SegmentMaxRows");
  GNN4TDL_CHECK_EQ(seg.size(), x.rows());
  const size_t d = x.cols();
  Matrix out(num_segments, d);
  // argmax[s * d + c] = input row index achieving the max, SIZE_MAX if empty.
  std::vector<size_t> argmax(num_segments * d, SIZE_MAX);
  for (size_t i = 0; i < seg.size(); ++i) {
    const size_t s = seg[i];
    GNN4TDL_CHECK_LT(s, num_segments);
    for (size_t c = 0; c < d; ++c) {
      double v = x.value()(i, c);
      size_t slot = s * d + c;
      if (argmax[slot] == SIZE_MAX || v > out(s, c)) {
        out(s, c) = v;
        argmax[slot] = i;
      }
    }
  }
  std::vector<size_t> argmax_copy = argmax;
  const size_t in_rows = x.rows();
  return Tensor::FromOp(std::move(out), {x},
                        [x, argmax_copy, in_rows, d](const Matrix& g) {
                          if (!x.requires_grad()) return;
                          Matrix gx(in_rows, d);
                          for (size_t s = 0; s < g.rows(); ++s)
                            for (size_t c = 0; c < d; ++c) {
                              size_t i = argmax_copy[s * d + c];
                              if (i != SIZE_MAX) gx(i, c) += g(s, c);
                            }
                          x.AccumulateGrad(gx);
                        });
}

Tensor SumAll(const Tensor& a) {
  TapeOpScope op_scope("SumAll");
  Matrix out(1, 1);
  out(0, 0) = a.value().Sum();
  const size_t r = a.rows();
  const size_t c = a.cols();
  return Tensor::FromOp(std::move(out), {a}, [a, r, c](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(Matrix::Full(r, c, g(0, 0)));
  });
}

Tensor MeanAll(const Tensor& a) {
  TapeOpScope op_scope("MeanAll");
  GNN4TDL_CHECK_GT(a.rows() * a.cols(), 0u);
  return Scale(SumAll(a), 1.0 / static_cast<double>(a.rows() * a.cols()));
}

Tensor SumSquares(const Tensor& a) {
  TapeOpScope op_scope("SumSquares");
  Matrix out(1, 1);
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) s += a.value()(i, j) * a.value()(i, j);
  out(0, 0) = s;
  return Tensor::FromOp(std::move(out), {a}, [a](const Matrix& g) {
    if (a.requires_grad()) a.AccumulateGrad(a.value() * (2.0 * g(0, 0)));
  });
}

Tensor SumAbs(const Tensor& a) {
  TapeOpScope op_scope("SumAbs");
  Matrix out(1, 1);
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) s += std::fabs(a.value()(i, j));
  out(0, 0) = s;
  return Tensor::FromOp(std::move(out), {a}, [a](const Matrix& g) {
    if (!a.requires_grad()) return;
    Matrix ga = a.value().Map([](double v) {
      return v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0);
    });
    a.AccumulateGrad(ga * g(0, 0));
  });
}

Tensor SoftmaxRows(const Tensor& logits) {
  TapeOpScope op_scope("SoftmaxRows");
  const size_t n = logits.rows();
  const size_t c_dim = logits.cols();
  Matrix out(n, c_dim);
  // Row softmax is embarrassingly row-parallel; per-row max/sum stay serial.
  ParallelFor(0, n, RowGrain(4 * c_dim), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      double mx = -std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < c_dim; ++c)
        mx = std::max(mx, logits.value()(r, c));
      double sum = 0.0;
      for (size_t c = 0; c < c_dim; ++c) {
        out(r, c) = std::exp(logits.value()(r, c) - mx);
        sum += out(r, c);
      }
      for (size_t c = 0; c < c_dim; ++c) out(r, c) /= sum;
    }
  });
  Matrix softmax = out;
  return Tensor::FromOp(std::move(out), {logits},
                        [logits, softmax](const Matrix& g) {
                          if (!logits.requires_grad()) return;
                          Matrix gl(g.rows(), g.cols());
                          ParallelFor(0, g.rows(), RowGrain(3 * g.cols()),
                                      [&](size_t lo, size_t hi) {
                            for (size_t r = lo; r < hi; ++r) {
                              double dot = 0.0;
                              for (size_t c = 0; c < g.cols(); ++c)
                                dot += g(r, c) * softmax(r, c);
                              for (size_t c = 0; c < g.cols(); ++c)
                                gl(r, c) = softmax(r, c) * (g(r, c) - dot);
                            }
                          });
                          logits.AccumulateGrad(gl);
                        });
}

Tensor SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                           const std::vector<double>& weights) {
  TapeOpScope op_scope("SoftmaxCrossEntropy");
  const size_t n = logits.rows();
  const size_t c_dim = logits.cols();
  GNN4TDL_CHECK_EQ(labels.size(), n);
  std::vector<double> w = weights.empty() ? std::vector<double>(n, 1.0) : weights;
  GNN4TDL_CHECK_EQ(w.size(), n);

  double w_sum = 0.0;
  for (double v : w) w_sum += v;
  GNN4TDL_CHECK_MSG(w_sum > 0.0, "SoftmaxCrossEntropy: all rows masked");

  // Per-row probabilities in parallel (write-disjoint rows); the scalar loss
  // is a tree reduction over row blocks — deterministic for a fixed thread
  // count, equal to the serial sum at threads=1.
  Matrix probs(n, c_dim);
  double loss = ParallelReduceSum(0, n, RowGrain(5 * c_dim),
                                  [&](size_t lo, size_t hi) {
    double chunk_loss = 0.0;
    for (size_t r = lo; r < hi; ++r) {
      double mx = -std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < c_dim; ++c)
        mx = std::max(mx, logits.value()(r, c));
      double sum = 0.0;
      for (size_t c = 0; c < c_dim; ++c) {
        probs(r, c) = std::exp(logits.value()(r, c) - mx);
        sum += probs(r, c);
      }
      for (size_t c = 0; c < c_dim; ++c) probs(r, c) /= sum;
      if (w[r] != 0.0) {
        const int y = labels[r];
        GNN4TDL_CHECK_GE(y, 0);
        GNN4TDL_CHECK_LT(static_cast<size_t>(y), c_dim);
        chunk_loss += w[r] * -std::log(std::max(
                                 probs(r, static_cast<size_t>(y)), 1e-300));
      }
    }
    return chunk_loss;
  });
  Matrix out(1, 1);
  out(0, 0) = loss / w_sum;

  std::vector<int> labels_copy = labels;
  return Tensor::FromOp(
      std::move(out), {logits},
      [logits, probs, labels_copy, w, w_sum](const Matrix& g) {
        if (!logits.requires_grad()) return;
        Matrix gl = probs;
        ParallelFor(0, gl.rows(), RowGrain(2 * gl.cols()),
                    [&](size_t lo, size_t hi) {
          for (size_t r = lo; r < hi; ++r) {
            if (w[r] == 0.0) {
              for (size_t c = 0; c < gl.cols(); ++c) gl(r, c) = 0.0;
              continue;
            }
            gl(r, static_cast<size_t>(labels_copy[r])) -= 1.0;
            const double scale = g(0, 0) * w[r] / w_sum;
            for (size_t c = 0; c < gl.cols(); ++c) gl(r, c) *= scale;
          }
        });
        logits.AccumulateGrad(gl);
      });
}

Tensor MseLoss(const Tensor& pred, const Matrix& target,
               const std::vector<double>& weights) {
  TapeOpScope op_scope("MseLoss");
  const size_t n = pred.rows();
  const size_t c_dim = pred.cols();
  GNN4TDL_CHECK_EQ(target.rows(), n);
  GNN4TDL_CHECK_EQ(target.cols(), c_dim);
  std::vector<double> w = weights.empty() ? std::vector<double>(n, 1.0) : weights;
  GNN4TDL_CHECK_EQ(w.size(), n);

  double w_sum = 0.0;
  for (double v : w) w_sum += v;
  GNN4TDL_CHECK_MSG(w_sum > 0.0, "MseLoss: all rows masked");
  const double denom = w_sum * static_cast<double>(c_dim);

  double loss = ParallelReduceSum(0, n, RowGrain(3 * c_dim),
                                  [&](size_t lo, size_t hi) {
    double chunk_loss = 0.0;
    for (size_t r = lo; r < hi; ++r) {
      if (w[r] == 0.0) continue;
      for (size_t c = 0; c < c_dim; ++c) {
        double d = pred.value()(r, c) - target(r, c);
        chunk_loss += w[r] * d * d;
      }
    }
    return chunk_loss;
  });
  Matrix out(1, 1);
  out(0, 0) = loss / denom;

  Matrix target_copy = target;
  return Tensor::FromOp(std::move(out), {pred},
                        [pred, target_copy, w, denom](const Matrix& g) {
                          if (!pred.requires_grad()) return;
                          Matrix gp(pred.rows(), pred.cols());
                          ParallelFor(0, gp.rows(), RowGrain(2 * gp.cols()),
                                      [&](size_t lo, size_t hi) {
                            for (size_t r = lo; r < hi; ++r) {
                              if (w[r] == 0.0) continue;
                              const double scale =
                                  2.0 * g(0, 0) * w[r] / denom;
                              for (size_t c = 0; c < gp.cols(); ++c)
                                gp(r, c) = scale * (pred.value()(r, c) -
                                                    target_copy(r, c));
                            }
                          });
                          pred.AccumulateGrad(gp);
                        });
}

Tensor BceWithLogits(const Tensor& pred, const std::vector<double>& targets,
                     const std::vector<double>& weights) {
  TapeOpScope op_scope("BceWithLogits");
  const size_t n = pred.rows();
  GNN4TDL_CHECK_EQ(pred.cols(), 1u);
  GNN4TDL_CHECK_EQ(targets.size(), n);
  std::vector<double> w = weights.empty() ? std::vector<double>(n, 1.0) : weights;
  GNN4TDL_CHECK_EQ(w.size(), n);

  double w_sum = 0.0;
  for (double v : w) w_sum += v;
  GNN4TDL_CHECK_MSG(w_sum > 0.0, "BceWithLogits: all rows masked");

  double loss = ParallelReduceSum(0, n, RowGrain(8), [&](size_t lo, size_t hi) {
    double chunk_loss = 0.0;
    for (size_t r = lo; r < hi; ++r) {
      if (w[r] == 0.0) continue;
      double z = pred.value()(r, 0);
      chunk_loss += w[r] * (Softplus(z) - targets[r] * z);
    }
    return chunk_loss;
  });
  Matrix out(1, 1);
  out(0, 0) = loss / w_sum;

  std::vector<double> t_copy = targets;
  return Tensor::FromOp(std::move(out), {pred},
                        [pred, t_copy, w, w_sum](const Matrix& g) {
                          if (!pred.requires_grad()) return;
                          Matrix gp(pred.rows(), 1);
                          ParallelFor(0, gp.rows(), RowGrain(8),
                                      [&](size_t lo, size_t hi) {
                            for (size_t r = lo; r < hi; ++r) {
                              if (w[r] == 0.0) continue;
                              double z = pred.value()(r, 0);
                              gp(r, 0) = g(0, 0) * w[r] *
                                         (StableSigmoid(z) - t_copy[r]) /
                                         w_sum;
                            }
                          });
                          pred.AccumulateGrad(gp);
                        });
}

}  // namespace gnn4tdl::ops
