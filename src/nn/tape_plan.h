#pragma once

// Static free-at-last-use lifetime analysis of one backward execution, the
// planning half of the arena execution model (docs/MEMORY.md). Backward
// with BackwardOptions::release_values implements the schedule; BuildTapePlan
// predicts it: for every node in the requires-grad subgraph it reports the
// step at which the node's buffers die, plus the simulated peak resident
// bytes of the planned schedule against the allocate-and-hold baseline. The
// trainer exports the two peaks as gauges and bench_fusion reports them next
// to the measured RSS delta.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace gnn4tdl {

/// One node of the plan, in backward execution order (descending seq — the
/// same order Backward() runs, which is why a node's own step IS its value's
/// last use: every consumer has already run by then).
struct TapePlanNode {
  uint64_t seq = 0;
  std::string op;          ///< producing op ("" for leaves/unnamed)
  size_t value_bytes = 0;  ///< payload of the forward value (grad matches)
  bool is_leaf = false;    ///< no backward_fn: parameter or graph input
  /// Interior, non-root, and referenced only from inside the tape — the
  /// planner may free its value. Leaves (optimizer reads grads), the root
  /// (callers read the loss), and externally-held intermediates are pinned.
  bool releasable = false;
  size_t step = 0;       ///< position in backward execution order
  size_t free_step = 0;  ///< step after which value+grad are gone
                         ///< (== nodes.size() when pinned for the whole run)
};

/// The plan plus its two modeled peaks. Scope: the requires-grad subgraph
/// only — constants and closure-captured forward temporaries are identical
/// under both schedules and excluded from both peaks, so the planned/naive
/// ratio understates the real saving slightly.
struct TapePlan {
  std::vector<TapePlanNode> nodes;  ///< in execution order
  size_t naive_peak_bytes = 0;    ///< all values + all grads live at once
  size_t planned_peak_bytes = 0;  ///< peak under free-at-last-use
};

/// Analyzes the tape rooted at `root` (normally the loss). Read-only: the
/// tape is not mutated and can still be run backward afterwards.
TapePlan BuildTapePlan(const Tensor& root);

}  // namespace gnn4tdl
