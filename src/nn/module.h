#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kernels/kernels.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace gnn4tdl {

/// Base class for anything holding trainable parameters. Subclasses register
/// their parameter tensors (and submodules) in the constructor; optimizers
/// consume Parameters().
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its registered submodules.
  std::vector<Tensor> Parameters() const;

  /// Total number of trainable scalars.
  size_t NumParameters() const;

  /// Clears accumulated gradients on all parameters.
  void ZeroGrad() const;

 protected:
  /// Registers a parameter created from `init`; returns the tensor handle.
  Tensor RegisterParameter(Matrix init);

  /// Registers a submodule whose parameters are included in Parameters().
  /// The submodule must outlive this module (typically a member).
  void RegisterSubmodule(Module* submodule);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> submodules_;
};

/// Activation functions selectable by config.
enum class Activation { kRelu, kLeakyRelu, kSigmoid, kTanh, kNone };

/// Fully connected layer: Y = X W + b (bias optional).
class Linear : public Module {
 public:
  /// Glorot-uniform weight init; zero bias.
  Linear(size_t in_dim, size_t out_dim, Rng& rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  /// act(x W + b) as one fused tape node when fusion is enabled (see
  /// nn/fused.h), the unfused composition otherwise — bit-identical either
  /// way.
  Tensor Forward(const Tensor& x, Activation act) const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  Tensor weight_;
  Tensor bias_;  // undefined if bias == false
};

/// Applies `act` to `x`.
Tensor Activate(const Tensor& x, Activation act);

/// Parses "relu" / "leaky_relu" / "sigmoid" / "tanh" / "none".
Activation ActivationFromName(const std::string& name);

/// Maps a training-tier activation to the f32 kernel tier's activation table
/// (kernels::BiasAct) — the single shared vocabulary both tiers select from,
/// so a frozen model's activation config means the same function in f64 and
/// f32 serving.
kernels::FAct ToKernelActivation(Activation act);

/// Multilayer perceptron: Linear -> act -> [dropout] -> ... -> Linear.
/// `dims` = {in, hidden..., out}; the final layer has no activation.
class Mlp : public Module {
 public:
  Mlp(const std::vector<size_t>& dims, Rng& rng,
      Activation act = Activation::kRelu, double dropout = 0.0);

  /// `training` enables dropout; `rng` draws the dropout masks.
  Tensor Forward(const Tensor& x, Rng& rng, bool training = false) const;

  /// Convenience inference pass (no dropout).
  Tensor Forward(const Tensor& x) const;

  size_t in_dim() const { return layers_.front()->in_dim(); }
  size_t out_dim() const { return layers_.back()->out_dim(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation act_;
  double dropout_;
};

}  // namespace gnn4tdl
