#pragma once

// Fused tape ops for the recurring message-passing patterns (docs/MEMORY.md,
// docs/KERNELS.md §fused). Each function here collapses a short chain of
// nn/ops nodes into ONE tape node whose forward and backward run the exact
// same kernel sequences, in the same element order, as the unfused
// composition — so values and gradients are bit-identical at every thread
// count, and the intermediate tape values (pre-bias, pre-activation,
// gathered/scaled edge messages) become transient buffers that die with the
// node's closure instead of living until the tape does.
//
// Every entry point bails to the unfused composition when fusion is disabled
// (SetFusionEnabled(false)) or when the pattern's preconditions don't hold;
// hits and bails are counted per pattern as fusion.hits.<name> /
// fusion.bails.<name> in the metrics registry. Disabling fusion is therefore
// always safe and bit-neutral — it only changes which nodes the tape holds.

#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"
#include "tensor/sparse.h"

namespace gnn4tdl::fused {

/// Process-wide fusion switch (default on). Thread-safe; flipping it affects
/// nodes created afterwards, never the recorded tape.
void SetFusionEnabled(bool enabled);
bool FusionEnabled();

/// act(x·W [+ b]) as one node. `b` may be undefined (no bias term).
/// Replaces MatMul + AddRowBroadcast + activation; eliminates the pre-bias
/// and pre-activation intermediates.
Tensor LinearBiasAct(const Tensor& x, const Tensor& w, const Tensor& b,
                     Activation act, double leaky_alpha = 0.2);

/// act(S·x [+ b]) as one node, S a fixed sparse operator. Replaces
/// SpMM + AddRowBroadcast + activation; eliminates the pre-bias and
/// pre-activation intermediates.
Tensor SpmmBiasAct(const SparseMatrix& sp, const Tensor& x, const Tensor& b,
                   Activation act, double leaky_alpha = 0.2);

/// act(a + b) as one node. Replaces Add + activation (the SAGE combine).
Tensor AddAct(const Tensor& a, const Tensor& b, Activation act,
              double leaky_alpha = 0.2);

/// [a[idx_a] | b[idx_b]] as one node. Replaces
/// ConcatCols(GatherRows(a, idx_a), GatherRows(b, idx_b)); eliminates both
/// gathered row blocks.
Tensor GatherConcat(const Tensor& a, const std::vector<size_t>& idx_a,
                    const Tensor& b, const std::vector<size_t>& idx_b);

/// Degree-normalized weighted aggregation as one node:
///   alpha = segment_softmax(log(w + eps), dst);  out[d] = Σ_e alpha_e h[src_e]
/// Replaces Log(AddScalar) + EdgeSoftmax + MulColBroadcast(GatherRows) +
/// ScatterAddRows (construct/learned.cc's normalize+aggregate); eliminates
/// the two E×d edge-message intermediates and the E×1 logit chain.
Tensor NormalizeAggregate(const Tensor& h, const Tensor& edge_weights,
                          const std::vector<size_t>& src,
                          const std::vector<size_t>& dst, size_t num_nodes,
                          double eps = 1e-9);

}  // namespace gnn4tdl::fused
