#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace gnn4tdl {

class TapeVerifier;
struct TapePlan;

/// Controls for Backward(). Defaults reproduce the historical behavior:
/// every tape value stays alive until the loss tensor is destroyed.
struct BackwardOptions {
  /// Free-at-last-use execution (docs/MEMORY.md): after a node's backward_fn
  /// has run, its gradient buffer, its closure (captured parent handles and
  /// forward temporaries), and — when no handle outside the tape still
  /// references the node — its value are released immediately instead of
  /// surviving until the tape dies. Numerics are unchanged; the tape cannot
  /// be walked backward a second time afterwards.
  bool release_values = false;

  /// Test hook: poison released values with quiet NaNs in place instead of
  /// freeing them, so a use-after-release surfaces as the first non-finite
  /// node in a TapeVerifier check_finite sweep rather than as silent reuse.
  bool poison_released = false;
};

/// A node in the reverse-mode autodiff tape. Tensor is a cheap shared handle:
/// copying it copies the handle, not the data. Every op in nn/ops.h creates a
/// fresh Tensor whose `backward_fn` routes the incoming gradient to its
/// parents; Backward() on a scalar loss then runs the tape in reverse
/// creation order.
///
/// Parameters are "leaf" tensors created with requires_grad=true; their
/// gradients accumulate across Backward() calls until ZeroGrad().
class Tensor {
 public:
  /// Null handle; most code should use the factories below.
  Tensor() = default;

  /// Leaf tensor holding `value`.
  static Tensor Leaf(Matrix value, bool requires_grad = false);

  /// Leaf wrapper for constants (requires_grad=false).
  static Tensor Constant(Matrix value) { return Leaf(std::move(value), false); }

  /// Interior node produced by an op. `backward_fn(grad_out)` must accumulate
  /// into the parents' grads. Ops should only list parents that require grad
  /// flow (constants may be captured in the closure instead).
  ///
  /// `op` names the producing op in TapeVerifier diagnostics; when empty, the
  /// innermost live TapeOpScope on this thread supplies the name.
  static Tensor FromOp(Matrix value, std::vector<Tensor> parents,
                       std::function<void(const Matrix&)> backward_fn,
                       std::string op = {});

  bool defined() const { return impl_ != nullptr; }

  const Matrix& value() const { return impl_->value; }
  /// Mutable access to the stored value. Tensor is a shared handle, so this is
  /// shallow-const (usable on const handles) — like shared_ptr::operator*.
  Matrix& mutable_value() const { return impl_->value; }

  /// Accumulated gradient. Zero-shaped until the first Backward() reaches
  /// this node.
  const Matrix& grad() const { return impl_->grad; }

  bool requires_grad() const { return impl_->requires_grad; }

  /// Name of the op that produced this node ("" for leaves and unnamed ops).
  const std::string& op_name() const { return impl_->op; }

  size_t rows() const { return impl_->value.rows(); }
  size_t cols() const { return impl_->value.cols(); }

  /// Runs reverse-mode autodiff from this node, which must be 1x1 (a scalar
  /// loss). Gradients accumulate into every reachable tensor with
  /// requires_grad (leaves keep them until ZeroGrad()).
  void Backward() const;

  /// Backward() with explicit lifetime options (see BackwardOptions).
  void Backward(const BackwardOptions& options) const;

  /// Clears this node's accumulated gradient.
  void ZeroGrad() const;

  /// Adds `g` into this node's gradient buffer (allocating it on first use).
  void AccumulateGrad(const Matrix& g) const;

  /// Stable identity for use as a map key.
  const void* id() const { return impl_.get(); }

  /// Number of distinct tape nodes reachable from this one through parent
  /// edges, including this node — the size of the graph Backward() would
  /// walk. O(nodes) each call; intended for per-epoch observability, not
  /// inner loops.
  size_t TapeSize() const;

 private:
  friend class TapeVerifier;
  friend TapePlan BuildTapePlan(const Tensor& root);

  struct Impl {
    Matrix value;
    Matrix grad;  // empty until first accumulation
    bool requires_grad = false;
    uint64_t seq = 0;  // creation order; children always have larger seq
    std::string op;    // producing op, for diagnostics ("" = leaf/unnamed)
    std::vector<Tensor> parents;
    std::function<void(const Matrix&)> backward_fn;
  };

  /// "tape node #<seq> (op=<op>, RxC)" — how verifier messages name nodes.
  static std::string DescribeNode(const Impl* node);

  /// TapeVerifier's shape probe: dry-runs `node->backward_fn` with a zero
  /// upstream gradient while AccumulateGrad is redirected to validate — not
  /// mutate — so a backward_fn that emits a wrongly-shaped gradient or writes
  /// to an undeclared tensor is reported into `errors` instead of corrupting
  /// grads or aborting.
  static void ProbeBackward(Impl* node, std::vector<std::string>* errors);

  std::shared_ptr<Impl> impl_;
};

/// RAII op-name annotation for the tape. While alive, FromOp calls on this
/// thread that pass no explicit name tag their nodes with `name`; scopes nest,
/// innermost wins (an op composed of other ops labels only the nodes it
/// creates directly). Every op in nn/ops.cc opens one, so TapeVerifier errors
/// can say "op=MatMul" instead of just a node number.
class TapeOpScope {
 public:
  explicit TapeOpScope(const char* name);
  ~TapeOpScope();

  TapeOpScope(const TapeOpScope&) = delete;
  TapeOpScope& operator=(const TapeOpScope&) = delete;

 private:
  const char* prev_;
};

}  // namespace gnn4tdl
