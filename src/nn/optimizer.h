#pragma once

#include <vector>

#include "nn/tensor.h"

namespace gnn4tdl {

/// First-order optimizer over a fixed set of parameter tensors. Subclasses
/// implement Step(); callers run ZeroGrad() -> forward -> Backward() -> Step().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently accumulated on the
  /// parameters. Parameters with empty gradients are skipped.
  virtual void Step() = 0;

  /// Clears gradients on all parameters.
  void ZeroGrad();

  /// Clips gradients to a maximum global L2 norm (no-op if already below).
  void ClipGradNorm(double max_norm);

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  std::vector<Tensor> params_;
  double lr_ = 1e-2;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-2;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  Sgd(std::vector<Tensor> params, const Options& options);
  void Step() override;

 private:
  Options options_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW when
/// weight_decay > 0).
class Adam : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Tensor> params, const Options& options);
  void Step() override;

 private:
  Options options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t t_ = 0;
};

}  // namespace gnn4tdl
