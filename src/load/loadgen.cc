#include "load/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <sstream>
#include <thread>
#include <utility>

namespace gnn4tdl {

std::vector<Arrival> BuildOpenLoopSchedule(
    const std::vector<TenantTraffic>& traffic, const LoadOptions& options) {
  std::vector<Arrival> schedule;
  if (traffic.empty() || options.offered_rps <= 0.0 ||
      options.duration_s <= 0.0) {
    return schedule;
  }
  Rng rng(options.seed);
  std::vector<double> weights;
  weights.reserve(traffic.size());
  for (const TenantTraffic& t : traffic) {
    weights.push_back(std::max(t.weight, 0.0));
  }
  const double horizon_ns = options.duration_s * 1e9;
  double t_ns = 0.0;
  for (;;) {
    // Exponential inter-arrival gap — a Poisson process at offered_rps.
    // Uniform() is in [0, 1), so log1p(-u) is finite.
    const double u = rng.Uniform();
    t_ns += (-std::log1p(-u) / options.offered_rps) * 1e9;
    if (t_ns >= horizon_ns) break;
    Arrival a;
    a.at_ns = static_cast<int64_t>(t_ns);
    a.traffic = rng.Categorical(weights);
    const Matrix* rows = traffic[a.traffic].rows;
    const size_t pool = rows != nullptr ? rows->rows() : 0;
    a.row = pool > 0
                ? static_cast<size_t>(rng.Int(0, static_cast<int64_t>(pool) - 1))
                : 0;
    schedule.push_back(a);
  }
  return schedule;
}

std::string LoadReport::ToString() const {
  std::ostringstream out;
  out << "offered=" << offered << " completed=" << completed
      << " rejected=" << rejected << " errors=" << errors << " wall_s="
      << wall_s << " achieved_rps=" << achieved_rps;
  for (const TenantLoadStats& t : tenants) {
    out << "\n  tenant=" << t.tenant << " offered=" << t.offered
        << " completed=" << t.completed << " rejected=" << t.rejected
        << " errors=" << t.errors << " rps=" << t.achieved_rps
        << " p50_ms=" << t.p50_ms << " p99_ms=" << t.p99_ms
        << " slo_ms=" << t.slo_ms << " slo_attainment=" << t.slo_attainment;
  }
  return out.str();
}

LoadGenerator::LoadGenerator(MultiTenantEngine* engine,
                             std::vector<TenantTraffic> traffic,
                             LoadOptions options)
    : engine_(engine),
      traffic_(std::move(traffic)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : obs::RealClock()) {}

Status LoadGenerator::Validate() const {
  if (engine_ == nullptr) {
    return Status::InvalidArgument("loadgen requires an engine");
  }
  if (traffic_.empty()) {
    return Status::InvalidArgument("loadgen requires at least one tenant");
  }
  double total_weight = 0.0;
  for (const TenantTraffic& t : traffic_) {
    if (engine_->registry()->Find(t.tenant) == nullptr) {
      return Status::InvalidArgument("loadgen tenant '" + t.tenant +
                                     "' is not registered in the engine");
    }
    if (t.rows == nullptr || t.rows->rows() == 0) {
      return Status::InvalidArgument("loadgen tenant '" + t.tenant +
                                     "' has an empty row pool");
    }
    total_weight += std::max(t.weight, 0.0);
  }
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("loadgen traffic weights are all zero");
  }
  return Status::OK();
}

StatusOr<LoadReport> LoadGenerator::Run() {
  GNN4TDL_RETURN_IF_ERROR(Validate());
  return options_.mode == LoadOptions::Mode::kOpenLoop ? RunOpenLoop()
                                                       : RunClosedLoop();
}

StatusOr<LoadReport> LoadGenerator::RunOpenLoop() {
  const std::vector<Arrival> schedule =
      BuildOpenLoopSchedule(traffic_, options_);

  LoadReport report;
  report.tenants.resize(traffic_.size());
  for (size_t i = 0; i < traffic_.size(); ++i) {
    report.tenants[i].tenant = traffic_[i].tenant;
  }

  struct Pending {
    std::future<std::vector<double>> future;
    size_t traffic = 0;
  };
  std::vector<Pending> pending;
  pending.reserve(schedule.size());

  const int64_t start_ns = clock_->NowNanos();
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Arrival& a = schedule[i];
    // Open loop: pace off the planned schedule, never off completions.
    const int64_t wait_ns = start_ns + a.at_ns - clock_->NowNanos();
    if (wait_ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(wait_ns));
    }
    const Matrix* rows = traffic_[a.traffic].rows;
    std::vector<double> features(rows->row_data(a.row),
                                 rows->row_data(a.row) + rows->cols());
    // Trace id = arrival index + 1: deterministic per (traffic, options), so
    // a flight-recorder dump from a seeded run names stable request ids.
    StatusOr<SubmitResult> submitted = engine_->SubmitTraced(
        traffic_[a.traffic].tenant, std::move(features), i + 1);
    ++report.offered;
    ++report.tenants[a.traffic].offered;
    if (submitted.ok()) {
      pending.push_back({std::move(submitted->future), a.traffic});
    } else if (submitted.status().code() == StatusCode::kResourceExhausted) {
      ++report.rejected;
      ++report.tenants[a.traffic].rejected;
    } else {
      ++report.errors;
      ++report.tenants[a.traffic].errors;
    }
  }
  for (Pending& p : pending) {
    try {
      (void)p.future.get();
      ++report.completed;
      ++report.tenants[p.traffic].completed;
    } catch (const std::exception&) {
      ++report.errors;
      ++report.tenants[p.traffic].errors;
    }
  }
  report.wall_s =
      static_cast<double>(clock_->NowNanos() - start_ns) / 1e9;
  FillEngineSideStats(&report);
  return report;
}

StatusOr<LoadReport> LoadGenerator::RunClosedLoop() {
  LoadReport report;
  report.tenants.resize(traffic_.size());
  for (size_t i = 0; i < traffic_.size(); ++i) {
    report.tenants[i].tenant = traffic_[i].tenant;
  }

  std::vector<double> weights;
  weights.reserve(traffic_.size());
  for (const TenantTraffic& t : traffic_) {
    weights.push_back(std::max(t.weight, 0.0));
  }

  // Per-worker tallies, merged after the join — no shared mutable state
  // between workers.
  struct Tally {
    size_t offered = 0;
    size_t completed = 0;
    size_t rejected = 0;
    size_t errors = 0;
  };
  const size_t workers = std::max<size_t>(options_.closed_workers, 1);
  std::vector<std::vector<Tally>> tallies(
      workers, std::vector<Tally>(traffic_.size()));

  const int64_t start_ns = clock_->NowNanos();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([this, w, &weights, &tallies] {
      // Distinct deterministic stream per worker.
      Rng rng(options_.seed + 0x9e3779b97f4a7c15ULL * (w + 1));
      std::vector<Tally>& mine = tallies[w];
      for (size_t r = 0; r < options_.requests_per_worker; ++r) {
        const size_t ti = rng.Categorical(weights);
        const Matrix* rows = traffic_[ti].rows;
        const size_t row = static_cast<size_t>(
            rng.Int(0, static_cast<int64_t>(rows->rows()) - 1));
        std::vector<double> features(rows->row_data(row),
                                     rows->row_data(row) + rows->cols());
        // Disjoint deterministic trace-id ranges per worker: worker w owns
        // [w*requests_per_worker + 1, (w+1)*requests_per_worker].
        const uint64_t trace_id = w * options_.requests_per_worker + r + 1;
        StatusOr<SubmitResult> submitted = engine_->SubmitTraced(
            traffic_[ti].tenant, std::move(features), trace_id);
        ++mine[ti].offered;
        if (!submitted.ok()) {
          if (submitted.status().code() == StatusCode::kResourceExhausted) {
            ++mine[ti].rejected;
          } else {
            ++mine[ti].errors;
          }
        } else {
          try {
            // closed loop: wait for the response
            (void)submitted->future.get();
            ++mine[ti].completed;
          } catch (const std::exception&) {
            ++mine[ti].errors;
          }
        }
        if (options_.think_time_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              static_cast<int64_t>(options_.think_time_ms * 1e6)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  report.wall_s = static_cast<double>(clock_->NowNanos() - start_ns) / 1e9;

  for (const std::vector<Tally>& worker_tally : tallies) {
    for (size_t ti = 0; ti < traffic_.size(); ++ti) {
      report.offered += worker_tally[ti].offered;
      report.completed += worker_tally[ti].completed;
      report.rejected += worker_tally[ti].rejected;
      report.errors += worker_tally[ti].errors;
      report.tenants[ti].offered += worker_tally[ti].offered;
      report.tenants[ti].completed += worker_tally[ti].completed;
      report.tenants[ti].rejected += worker_tally[ti].rejected;
      report.tenants[ti].errors += worker_tally[ti].errors;
    }
  }
  FillEngineSideStats(&report);
  return report;
}

void LoadGenerator::FillEngineSideStats(LoadReport* report) const {
  if (report->wall_s > 0.0) {
    report->achieved_rps =
        static_cast<double>(report->completed) / report->wall_s;
  }
  for (TenantLoadStats& t : report->tenants) {
    const Tenant* tenant = engine_->registry()->Find(t.tenant);
    if (tenant != nullptr) t.slo_ms = tenant->options.slo_ms;
    StatusOr<ServeStats> stats = engine_->TenantStats(t.tenant);
    if (stats.ok()) {
      t.p50_ms = stats->p50_ms;
      t.p99_ms = stats->p99_ms;
    }
    StatusOr<double> attainment =
        engine_->TenantLatencyFractionBelow(t.tenant, t.slo_ms);
    if (attainment.ok()) t.slo_attainment = *attainment;
    if (report->wall_s > 0.0) {
      t.achieved_rps = static_cast<double>(t.completed) / report->wall_s;
    }
  }
}

Status CheckAccounting(const MultiTenantEngine& engine,
                       const LoadReport& report) {
  std::ostringstream diff;
  if (report.offered !=
      report.completed + report.rejected + report.errors) {
    diff << "loadgen internal: offered " << report.offered
         << " != completed+rejected+errors "
         << report.completed + report.rejected + report.errors << "; ";
  }
  const ServeStats agg = engine.Stats();
  if (agg.rejected != report.rejected) {
    diff << "engine rejected " << agg.rejected << " != loadgen rejected "
         << report.rejected << "; ";
  }
  // Engine `requests` counts every batched row, including ones whose batch
  // failed to score (the generator sees those as errors); with an error-free
  // run the two views must agree exactly.
  if (report.errors == 0 && agg.requests != report.completed) {
    diff << "engine requests " << agg.requests << " != loadgen completed "
         << report.completed << "; ";
  }
  for (const TenantLoadStats& t : report.tenants) {
    StatusOr<ServeStats> stats = engine.TenantStats(t.tenant);
    if (!stats.ok()) {
      diff << "tenant " << t.tenant << ": " << stats.status().ToString()
           << "; ";
      continue;
    }
    if (stats->rejected != t.rejected) {
      diff << "tenant " << t.tenant << " engine rejected " << stats->rejected
           << " != loadgen " << t.rejected << "; ";
    }
    if (t.errors == 0 && stats->requests != t.completed) {
      diff << "tenant " << t.tenant << " engine requests " << stats->requests
           << " != loadgen completed " << t.completed << "; ";
    }
  }
  // Latency-split reconciliation: queue wait + compute must not exceed the
  // end-to-end latency, per request (flight-recorder digests) and in
  // aggregate (histogram sums). Equality holds by construction up to one
  // ns->ms float rounding per term, hence the epsilon.
  constexpr double kSplitEpsMs = 1e-6;
  if (agg.requests > 0 &&
      agg.queue_wait_ms_sum + agg.compute_ms_sum >
          agg.latency_ms_sum + kSplitEpsMs * static_cast<double>(agg.requests)) {
    diff << "latency split sums: wait " << agg.queue_wait_ms_sum
         << " + compute " << agg.compute_ms_sum << " > total "
         << agg.latency_ms_sum << "; ";
  }
  if (engine.recorder().enabled()) {
    std::vector<obs::RequestDigest> digests = engine.recorder().RingSnapshot();
    std::vector<obs::RequestDigest> retained =
        engine.recorder().RetainedSnapshot();
    digests.insert(digests.end(), retained.begin(), retained.end());
    for (const obs::RequestDigest& d : digests) {
      if (d.trace_id == 0) {
        diff << "recorder digest for tenant " << d.tenant
             << " has trace_id 0; ";
      }
      if (d.queue_wait_ms + d.compute_ms > d.total_ms + kSplitEpsMs) {
        diff << "trace " << d.trace_id << ": wait " << d.queue_wait_ms
             << " + compute " << d.compute_ms << " > total " << d.total_ms
             << "; ";
      }
    }
  }
  if (!diff.str().empty()) {
    return Status::Internal("serving accounting mismatch: " + diff.str());
  }
  return Status::OK();
}

}  // namespace gnn4tdl
