#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/clock.h"
#include "serve/tenant_engine.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// One tenant's slice of the offered traffic.
struct TenantTraffic {
  /// Must name a tenant registered in the engine's ModelRegistry.
  std::string tenant;
  /// Share of offered requests (sampled via Rng::Categorical, so only the
  /// ratios matter).
  double weight = 1.0;
  /// Pool of featurized rows to draw request payloads from (each request
  /// copies one uniformly random row). Must match the tenant model's
  /// feature_dim and outlive the generator.
  const Matrix* rows = nullptr;
};

/// Traffic-shape options for LoadGenerator.
struct LoadOptions {
  enum class Mode {
    /// Arrivals follow a seeded Poisson process at offered_rps, independent
    /// of completions — the generator never waits for responses while
    /// submitting, so queueing delay and rejections are visible (the
    /// textbook way to measure saturation honestly; a closed loop
    /// coordinates with the server and hides overload).
    kOpenLoop,
    /// `closed_workers` synchronous callers, each submitting, waiting for
    /// the response, thinking for think_time_ms, and repeating — models a
    /// fixed client population.
    kClosedLoop,
  };
  Mode mode = Mode::kOpenLoop;

  // Open loop.
  double offered_rps = 500.0;
  double duration_s = 1.0;

  // Closed loop.
  size_t closed_workers = 4;
  size_t requests_per_worker = 100;
  double think_time_ms = 0.0;

  /// Seeds arrival gaps, tenant choice, and row choice. The open-loop
  /// schedule is a pure function of (traffic, options) — same seed, same
  /// arrivals, bit for bit.
  uint64_t seed = 42;
  /// Time source for wall-clock measurement; null means obs::RealClock().
  /// Pacing sleeps are real either way, so drive short runs in tests.
  const obs::Clock* clock = nullptr;
};

/// One planned open-loop request: a nanosecond offset from the run start, a
/// tenant (index into the traffic vector), and a row in that tenant's pool.
struct Arrival {
  int64_t at_ns = 0;
  size_t traffic = 0;
  size_t row = 0;
};

/// The deterministic open-loop schedule: exponential inter-arrival gaps at
/// offered_rps (a Poisson process), tenant sampled by weight, row sampled
/// uniformly, all from one Rng seeded with options.seed. Exposed separately
/// from Run() so determinism is testable without serving anything.
std::vector<Arrival> BuildOpenLoopSchedule(
    const std::vector<TenantTraffic>& traffic, const LoadOptions& options);

/// Per-tenant load outcome. `offered`/`completed`/`rejected`/`errors` are the
/// generator's own counts (every submission lands in exactly one);
/// latency quantiles and SLO attainment come from the engine's per-tenant
/// histograms, judged against the tenant's registered TenantOptions::slo_ms.
struct TenantLoadStats {
  std::string tenant;
  size_t offered = 0;
  size_t completed = 0;
  size_t rejected = 0;
  size_t errors = 0;
  double achieved_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double slo_ms = 0.0;
  /// Fraction of completed requests with end-to-end latency <= slo_ms.
  double slo_attainment = 0.0;
};

/// Whole-run outcome: aggregate counts plus one TenantLoadStats per traffic
/// entry.
struct LoadReport {
  size_t offered = 0;
  size_t completed = 0;
  size_t rejected = 0;
  size_t errors = 0;
  double wall_s = 0.0;
  double achieved_rps = 0.0;
  std::vector<TenantLoadStats> tenants;

  std::string ToString() const;
};

/// Drives a MultiTenantEngine with synthetic traffic and reports per-tenant
/// throughput, latency, rejection, and SLO attainment. The generator is the
/// standing harness ISSUE/ROADMAP call for: every serving change can be
/// load-tested the same way (bench_load sweeps it; `gnn4tdl loadgen` and the
/// check.sh `load` stage smoke it).
///
/// Threads: closed-loop workers and the open-loop submitter run on their own
/// std::threads (src/load/ is allowlisted, like src/serve/) — they model
/// clients, not kernel work, so the shared ThreadPool is wrong for them.
class LoadGenerator {
 public:
  /// The engine must outlive the generator; traffic tenants must be
  /// registered in its registry.
  LoadGenerator(MultiTenantEngine* engine, std::vector<TenantTraffic> traffic,
                LoadOptions options = {});

  /// Runs one load session to completion (all futures resolved) and reports.
  /// InvalidArgument when traffic is empty, names an unknown tenant, or has
  /// a null/empty row pool.
  [[nodiscard]] StatusOr<LoadReport> Run();

 private:
  Status Validate() const;
  StatusOr<LoadReport> RunOpenLoop();
  StatusOr<LoadReport> RunClosedLoop();
  void FillEngineSideStats(LoadReport* report) const;

  MultiTenantEngine* engine_;
  std::vector<TenantTraffic> traffic_;
  LoadOptions options_;
  const obs::Clock* clock_;
};

/// Cross-checks the generator's own accounting against the engine's: every
/// rejection the generator saw must be in the engine's rejected counters
/// (aggregate and per tenant), and every completion in its request counters.
/// Also reconciles the latency split — queue_wait + compute <= total, both
/// per request over every flight-recorder digest (ring and retained) and in
/// aggregate over the histogram sums — and requires every recorded digest to
/// carry a nonzero trace id.
/// Requires a fresh engine that served only this run, Stop()ed first (the
/// worker publishes a batch's completion counters just after resolving its
/// futures, so only a joined worker guarantees flushed accounting). OK when
/// consistent;
/// Internal with a diff message otherwise. The check.sh `load` stage and
/// bench_load gate on this, so serving accounting cannot silently drift from
/// what clients observe.
[[nodiscard]] Status CheckAccounting(const MultiTenantEngine& engine,
                                     const LoadReport& report);

}  // namespace gnn4tdl
