#include "serve/attacher.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"

namespace gnn4tdl {

InductiveAttacher::InductiveAttacher(const Graph* train_graph,
                                     const Matrix* x_train,
                                     const NeighborSource* index,
                                     InductiveAttacherOptions options)
    : train_graph_(train_graph),
      x_train_(x_train),
      index_(index),
      options_(options) {
  GNN4TDL_CHECK(train_graph_ != nullptr);
  GNN4TDL_CHECK(x_train_ != nullptr);
  GNN4TDL_CHECK(index_ != nullptr);
  GNN4TDL_CHECK_EQ(train_graph_->num_nodes(), x_train_->rows());
  if (options_.k == 0) options_.k = 1;
  if (options_.hops == 0) options_.hops = 1;
  full_degree_ = train_graph_->Degrees(/*weighted=*/true);
}

StatusOr<AttachedBatch> InductiveAttacher::Attach(const Matrix& x_new,
                                                  bool with_features) const {
  obs::TraceSpan span("serve/attach");
  span.AddItems(static_cast<double>(x_new.rows()));
  const size_t n_train = x_train_->rows();
  const size_t n_new = x_new.rows();
  if (n_new == 0) {
    return Status::InvalidArgument("Attach requires at least one new row");
  }
  if (x_new.cols() != x_train_->cols()) {
    return Status::InvalidArgument(
        "Attach: new rows have " + std::to_string(x_new.cols()) +
        " features, the frozen training matrix has " +
        std::to_string(x_train_->cols()));
  }

  // 1. Anchor each new row to its k most similar training rows.
  std::vector<std::vector<KnnHit>> anchors = index_->QueryBatch(x_new,
                                                               options_.k);

  // 2. Collect the training nodes inside the new rows' receptive field:
  // anchors are at distance 1, so hops-1 further BFS levels over the training
  // graph reach everything `hops` propagation steps can read.
  std::vector<char> included(n_train, 0);
  if (options_.full_neighborhood) {
    std::fill(included.begin(), included.end(), 1);
  } else {
    std::vector<size_t> frontier;
    for (const auto& hits : anchors) {
      for (const KnnHit& h : hits) {
        if (!included[h.index]) {
          included[h.index] = 1;
          frontier.push_back(h.index);
        }
      }
    }
    const SparseMatrix& adj = train_graph_->adjacency();
    const std::vector<size_t>& row_ptr = adj.row_ptr();
    const std::vector<size_t>& col_idx = adj.col_idx();
    for (size_t level = 1; level < options_.hops && !frontier.empty();
         ++level) {
      std::vector<size_t> next;
      for (size_t v : frontier) {
        for (size_t e = row_ptr[v]; e < row_ptr[v + 1]; ++e) {
          size_t w = col_idx[e];
          if (!included[w]) {
            included[w] = 1;
            next.push_back(w);
          }
        }
      }
      frontier = std::move(next);
    }
  }

  AttachedBatch batch;
  batch.num_new = n_new;
  for (size_t v = 0; v < n_train; ++v) {
    if (included[v]) batch.train_nodes.push_back(v);
  }
  const size_t n_sub = batch.train_nodes.size();
  std::unordered_map<size_t, size_t> local;
  local.reserve(n_sub);
  for (size_t i = 0; i < n_sub; ++i) local[batch.train_nodes[i]] = i;

  // 3. Subgraph edges: training edges between included nodes (original
  // weights), plus the attach edges in both directions with weight 1.0 —
  // exactly what PredictInductive appends to the full extended graph.
  std::vector<Edge> edges;
  const SparseMatrix& adj = train_graph_->adjacency();
  const std::vector<size_t>& row_ptr = adj.row_ptr();
  const std::vector<size_t>& col_idx = adj.col_idx();
  const std::vector<double>& values = adj.values();
  for (size_t i = 0; i < n_sub; ++i) {
    size_t v = batch.train_nodes[i];
    for (size_t e = row_ptr[v]; e < row_ptr[v + 1]; ++e) {
      auto it = local.find(col_idx[e]);
      if (it != local.end()) edges.push_back({i, it->second, values[e]});
    }
  }

  // 4. Extended-graph degrees. Included training nodes start from their full
  // training-graph weighted degree (frontier nodes keep correct degrees even
  // though some of their in-subgraph edges are truncated — their aggregated
  // values are never consumed, only their normalization-relevant degree is).
  // Attach-edge increments are applied in ascending new-row order, matching
  // the CSR column order — and thus float summation order — of the full
  // extended graph's degree computation.
  batch.degrees.assign(n_sub + n_new, 0.0);
  for (size_t i = 0; i < n_sub; ++i) {
    batch.degrees[i] = full_degree_[batch.train_nodes[i]];
  }
  for (size_t i = 0; i < n_new; ++i) {
    size_t new_local = n_sub + i;
    for (const KnnHit& h : anchors[i]) {
      size_t anchor_local = local.at(h.index);
      edges.push_back({new_local, anchor_local, 1.0});
      edges.push_back({anchor_local, new_local, 1.0});
      batch.degrees[anchor_local] += 1.0;
      batch.degrees[new_local] += 1.0;
    }
  }

  batch.graph = Graph::FromEdges(n_sub + n_new, edges, /*symmetrize=*/false);
  if (with_features) {
    batch.features = x_train_->GatherRows(batch.train_nodes).ConcatRows(x_new);
  }
  return batch;
}

}  // namespace gnn4tdl
