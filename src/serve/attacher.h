#pragma once

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "serve/knn_index.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// Options for InductiveAttacher.
struct InductiveAttacherOptions {
  /// Attach edges per new row (the trained model's knn.k).
  size_t k = 10;
  /// Message-passing depth of the model (effective number of propagation
  /// steps). The extracted subgraph covers every training node within `hops`
  /// hops of a new row — the exact receptive field of the new rows.
  size_t hops = 2;
  /// Include every training node regardless of distance. Required for
  /// backbones whose receptive field is global (graph transformer) or whose
  /// layers couple all rows (PairNorm); otherwise a pure efficiency/accuracy
  /// trade-off knob.
  bool full_neighborhood = false;
};

/// One micro-batch of new rows attached to the frozen training graph.
/// Node layout: the included training nodes first (in ascending original id
/// order, so CSR column order — and therefore floating-point summation order
/// — matches the full extended graph), then the new rows.
struct AttachedBatch {
  Graph graph;
  /// One feature row per subgraph node.
  Matrix features;
  /// Weighted degree of each subgraph node *in the full extended graph*
  /// (training graph + this batch's attach edges, excluding the self-loop GCN
  /// normalization adds). Passing this to InstanceGraphGnn::ScoreOnGraph
  /// makes subgraph scoring bit-exact with full-graph PredictInductive.
  std::vector<double> degrees;
  /// Original training-graph ids of the included training nodes, ascending.
  std::vector<size_t> train_nodes;
  size_t num_new = 0;

  /// Local subgraph id of new row `i`.
  size_t NewNodeLocal(size_t i) const { return train_nodes.size() + i; }
};

/// Connects incoming rows to the frozen training graph for inductive
/// inference: each new row gets `k` attach edges to its nearest training
/// rows (via the prebuilt NeighborSource — the exact KnnIndex, or a
/// sharded/cache-fronted view of it), and only the training nodes inside the
/// new rows' `hops`-hop receptive field are materialized — the irregular
/// neighborhood gather is bounded per request instead of touching the whole
/// training set.
///
/// The referenced graph, feature matrix, and index must outlive the attacher
/// (FrozenModel owns all three behind stable pointers).
class InductiveAttacher {
 public:
  InductiveAttacher(const Graph* train_graph, const Matrix* x_train,
                    const NeighborSource* index,
                    InductiveAttacherOptions options);

  /// Builds the attached subgraph for a batch of featurized new rows
  /// (n_new x dim). New rows attach to training rows only, never to each
  /// other, matching InstanceGraphGnn::PredictInductive semantics.
  /// With `with_features` false the double feature matrix is left empty —
  /// the f32 serving tier assembles its own single-precision copy from a
  /// pre-cast training cache instead of gathering doubles it would discard.
  [[nodiscard]] StatusOr<AttachedBatch> Attach(const Matrix& x_new,
                                               bool with_features = true) const;

  const InductiveAttacherOptions& options() const { return options_; }

 private:
  const Graph* train_graph_;
  const Matrix* x_train_;
  const NeighborSource* index_;
  InductiveAttacherOptions options_;
  /// Weighted degrees of the training graph, precomputed at build time.
  std::vector<double> full_degree_;
};

}  // namespace gnn4tdl
