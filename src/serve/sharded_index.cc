#include "serve/sharded_index.h"

#include <algorithm>

#include "common/check.h"

namespace gnn4tdl {

ShardedKnnIndex::ShardedKnnIndex(const KnnIndex* base,
                                 ShardedKnnIndexOptions options)
    : base_(base) {
  GNN4TDL_CHECK(base_ != nullptr);
  const size_t n = base_->num_rows();
  size_t shards = std::max<size_t>(options.num_shards, 1);
  shards = std::min(shards, n);
  // Contiguous row blocks, sizes differing by at most one row.
  const size_t chunk = n / shards;
  const size_t extra = n % shards;
  size_t lo = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t hi = lo + chunk + (s < extra ? 1 : 0);
    ranges_.emplace_back(lo, hi);
    lo = hi;
  }
  if (options.cache_capacity > 0) {
    NeighborCacheOptions cache_opts;
    cache_opts.capacity = options.cache_capacity;
    cache_opts.stripes = options.cache_stripes;
    cache_ = std::make_unique<NeighborCache>(cache_opts);
  }
}

std::vector<KnnHit> ShardedKnnIndex::ScanShards(const double* query,
                                                size_t k) const {
  // Per-shard top-k under BetterHit, then a merge under the same comparator:
  // any row in the global top-k is in its own shard's top-k, so the merged
  // candidate set always contains the exact answer.
  std::vector<KnnHit> candidates;
  candidates.reserve(ranges_.size() * k);
  std::vector<KnnHit> shard_hits;
  for (const auto& [lo, hi] : ranges_) {
    shard_hits.clear();
    shard_hits.reserve(hi - lo);
    for (size_t row = lo; row < hi; ++row) {
      shard_hits.push_back({row, base_->SimilarityTo(query, row)});
    }
    const size_t take = std::min(k, shard_hits.size());
    std::partial_sort(shard_hits.begin(),
                      shard_hits.begin() + static_cast<ptrdiff_t>(take),
                      shard_hits.end(), BetterHit);
    candidates.insert(candidates.end(), shard_hits.begin(),
                      shard_hits.begin() + static_cast<ptrdiff_t>(take));
  }
  const size_t take = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<ptrdiff_t>(take),
                    candidates.end(), BetterHit);
  candidates.resize(take);
  return candidates;
}

std::vector<KnnHit> ShardedKnnIndex::Query(const double* query,
                                           size_t k) const {
  const size_t n = base_->num_rows();
  k = std::min(std::max<size_t>(k, 1), n);
  const size_t dim = base_->dim();

  std::vector<KnnHit> hits;
  if (cache_ != nullptr && cache_->Lookup(query, dim, k, &hits)) return hits;

  hits = base_->exact() ? ScanShards(query, k) : base_->Query(query, k);
  if (cache_ != nullptr) cache_->Insert(query, dim, k, hits);
  return hits;
}

std::vector<std::vector<KnnHit>> ShardedKnnIndex::QueryBatch(const Matrix& x,
                                                             size_t k) const {
  GNN4TDL_CHECK_EQ(x.cols(), base_->dim());
  std::vector<std::vector<KnnHit>> out;
  out.reserve(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out.push_back(Query(x.row_data(i), k));
  return out;
}

}  // namespace gnn4tdl
