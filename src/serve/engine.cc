#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"
#include "obs/trace.h"

namespace gnn4tdl {

namespace {

// Batch sizes are small integers; start the buckets at 1 so each size up to
// ~16 lands near its own bucket. The mean reported in ServeStats is computed
// exactly from counters, not from this histogram.
obs::HistogramOptions BatchRowsHistogramOptions() {
  obs::HistogramOptions opts;
  opts.min_value = 1.0;
  opts.num_buckets = 64;
  return opts;
}

}  // namespace

std::string ServeStats::ToString() const {
  std::ostringstream out;
  out << "requests=" << requests << " batches=" << batches
      << " rejected=" << rejected << " mean_batch=" << mean_batch_rows
      << " p50_ms=" << p50_ms << " p95_ms=" << p95_ms << " p99_ms=" << p99_ms
      << " max_ms=" << max_ms << " throughput_rps=" << throughput_rps
      << " max_queue_depth=" << max_queue_depth;
  return out.str();
}

ServingEngine::ServingEngine(const FrozenModel* model, ServingOptions options)
    : model_(model),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : obs::RealClock()),
      batch_rows_hist_(BatchRowsHistogramOptions()) {
  GNN4TDL_CHECK(model_ != nullptr);
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.deadline_ms < 0.0) options_.deadline_ms = 0.0;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  // Pre-warm the shared kernel pool (sized by GNN4TDL_THREADS) so the first
  // batch forward does not pay worker spin-up inside its latency budget.
  ThreadPool::Global();
  worker_ = std::thread([this] { WorkerLoop(); });
}

ServingEngine::~ServingEngine() { Stop(); }

void ServingEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::future<std::vector<double>> ServingEngine::Submit(
    std::vector<double> features) {
  Request req;
  req.features = std::move(features);
  req.enqueued_ns = clock_->NowNanos();
  std::future<std::vector<double>> future = req.promise.get_future();

  std::string reject;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject = "serving engine is stopped";
    } else if (req.features.size() != model_->feature_dim()) {
      reject = "feature vector has " + std::to_string(req.features.size()) +
               " entries, the frozen model expects " +
               std::to_string(model_->feature_dim());
    } else if (queue_.size() >= options_.queue_capacity) {
      reject = "serving queue is full (" +
               std::to_string(options_.queue_capacity) + " rows)";
      ++rejected_;
    } else {
      if (!any_request_) {
        any_request_ = true;
        first_submit_ns_ = req.enqueued_ns;
      }
      queue_.push_back(std::move(req));
      max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
      depth = queue_.size();
    }
  }
  if (!reject.empty()) {
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("serve.rejected_total")
          .Increment();
    }
    req.promise.set_exception(
        std::make_exception_ptr(std::runtime_error(reject)));
  } else {
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Global()
          .GetGauge("serve.queue_depth")
          .Set(static_cast<double>(depth));
    }
    cv_.notify_one();
  }
  return future;
}

void ServingEngine::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and fully drained

      // Hold the batch open until it fills or the oldest request's deadline
      // passes; stop requests close it immediately. The remaining wait is
      // recomputed from the injected clock each iteration (rather than
      // passing an absolute time_point to wait_until) so the deadline logic
      // follows a FakeClock in tests.
      const int64_t deadline_ns =
          queue_.front().enqueued_ns +
          static_cast<int64_t>(options_.deadline_ms * 1e6);
      while (!stopping_ && queue_.size() < options_.max_batch) {
        const int64_t remaining_ns = deadline_ns - clock_->NowNanos();
        if (remaining_ns <= 0) break;
        cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns));
      }

      size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    StatusOr<Matrix> logits = [&] {
      obs::TraceSpan span("serve/batch");
      span.AddItems(static_cast<double>(batch.size()));
      Matrix x(batch.size(), model_->feature_dim());
      for (size_t i = 0; i < batch.size(); ++i) {
        std::copy(batch[i].features.begin(), batch[i].features.end(),
                  x.row_data(i));
      }
      return model_->ScoreFeatures(x);
    }();
    const int64_t done_ns = clock_->NowNanos();

    for (size_t i = 0; i < batch.size(); ++i) {
      if (!logits.ok()) {
        batch[i].promise.set_exception(std::make_exception_ptr(
            std::runtime_error(logits.status().ToString())));
      } else {
        std::vector<double> row(logits->row_data(i),
                                logits->row_data(i) + logits->cols());
        batch[i].promise.set_value(std::move(row));
      }
    }

    const bool metrics = obs::MetricsEnabled();
    batch_rows_hist_.Record(static_cast<double>(batch.size()));
    if (metrics) {
      obs::MetricsRegistry::Global()
          .GetHistogram("serve.batch_rows", BatchRowsHistogramOptions())
          .Record(static_cast<double>(batch.size()));
    }
    for (const Request& req : batch) {
      const double ms =
          static_cast<double>(done_ns - req.enqueued_ns) / 1e6;
      latency_ms_hist_.Record(ms);
      if (metrics) {
        auto& registry = obs::MetricsRegistry::Global();
        registry.GetHistogram("serve.latency_ms").Record(ms);
        registry.GetCounter("serve.requests_total").Increment();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++batches_;
      total_batch_rows_ += batch.size();
      requests_done_ += batch.size();
      last_complete_ns_ = done_ns;
    }
  }
}

ServeStats ServingEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats stats;
  stats.requests = requests_done_;
  stats.batches = batches_;
  stats.rejected = rejected_;
  stats.max_queue_depth = max_queue_depth_;
  if (batches_ > 0) {
    stats.mean_batch_rows =
        static_cast<double>(total_batch_rows_) / static_cast<double>(batches_);
  }
  if (requests_done_ > 0) {
    stats.p50_ms = latency_ms_hist_.Quantile(0.50);
    stats.p95_ms = latency_ms_hist_.Quantile(0.95);
    stats.p99_ms = latency_ms_hist_.Quantile(0.99);
    stats.max_ms = latency_ms_hist_.Max();
    double span_s =
        static_cast<double>(last_complete_ns_ - first_submit_ns_) / 1e9;
    stats.throughput_rps =
        span_s > 0.0 ? static_cast<double>(stats.requests) / span_s : 0.0;
  }
  return stats;
}

}  // namespace gnn4tdl
