#include "serve/engine.h"

#include <utility>

#include "common/check.h"

namespace gnn4tdl {

ServingEngine::ServingEngine(const FrozenModel* model, ServingOptions options) {
  GNN4TDL_CHECK(model != nullptr);
  TenantOptions tenant;
  tenant.max_batch = options.max_batch;
  tenant.deadline_ms = options.deadline_ms;
  tenant.queue_capacity = options.queue_capacity;
  tenant.slo_ms = options.slo_ms;
  Status added = registry_.AddTenant(kDefaultTenant, model, tenant);
  GNN4TDL_CHECK(added.ok());
  MultiTenantEngineOptions engine_options;
  engine_options.clock = options.clock;
  engine_options.recorder = options.recorder;
  engine_ = std::make_unique<MultiTenantEngine>(&registry_, engine_options);
}

StatusOr<std::future<std::vector<double>>> ServingEngine::Submit(
    std::vector<double> features) {
  return engine_->Submit(kDefaultTenant, std::move(features));
}

StatusOr<SubmitResult> ServingEngine::SubmitTraced(
    std::vector<double> features, uint64_t trace_id) {
  return engine_->SubmitTraced(kDefaultTenant, std::move(features), trace_id);
}

void ServingEngine::Stop() { engine_->Stop(); }

ServeStats ServingEngine::Stats() const { return engine_->Stats(); }

}  // namespace gnn4tdl
