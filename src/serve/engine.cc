#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"

namespace gnn4tdl {

namespace {

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string ServeStats::ToString() const {
  std::ostringstream out;
  out << "requests=" << requests << " batches=" << batches
      << " rejected=" << rejected << " mean_batch=" << mean_batch_rows
      << " p50_ms=" << p50_ms << " p95_ms=" << p95_ms << " p99_ms=" << p99_ms
      << " max_ms=" << max_ms << " throughput_rps=" << throughput_rps
      << " max_queue_depth=" << max_queue_depth;
  return out.str();
}

ServingEngine::ServingEngine(const FrozenModel* model, ServingOptions options)
    : model_(model), options_(options) {
  GNN4TDL_CHECK(model_ != nullptr);
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.deadline_ms < 0.0) options_.deadline_ms = 0.0;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  // Pre-warm the shared kernel pool (sized by GNN4TDL_THREADS) so the first
  // batch forward does not pay worker spin-up inside its latency budget.
  ThreadPool::Global();
  worker_ = std::thread([this] { WorkerLoop(); });
}

ServingEngine::~ServingEngine() { Stop(); }

void ServingEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::future<std::vector<double>> ServingEngine::Submit(
    std::vector<double> features) {
  Request req;
  req.features = std::move(features);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<std::vector<double>> future = req.promise.get_future();

  std::string reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject = "serving engine is stopped";
    } else if (req.features.size() != model_->feature_dim()) {
      reject = "feature vector has " + std::to_string(req.features.size()) +
               " entries, the frozen model expects " +
               std::to_string(model_->feature_dim());
    } else if (queue_.size() >= options_.queue_capacity) {
      reject = "serving queue is full (" +
               std::to_string(options_.queue_capacity) + " rows)";
      ++rejected_;
    } else {
      if (!any_request_) {
        any_request_ = true;
        first_submit_ = req.enqueued;
      }
      queue_.push_back(std::move(req));
      max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    }
  }
  if (!reject.empty()) {
    req.promise.set_exception(
        std::make_exception_ptr(std::runtime_error(reject)));
  } else {
    cv_.notify_one();
  }
  return future;
}

void ServingEngine::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and fully drained

      // Hold the batch open until it fills or the oldest request's deadline
      // passes; stop requests close it immediately.
      auto deadline =
          queue_.front().enqueued +
          std::chrono::microseconds(
              static_cast<long long>(options_.deadline_ms * 1000.0));
      cv_.wait_until(lock, deadline, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });

      size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    Matrix x(batch.size(), model_->feature_dim());
    for (size_t i = 0; i < batch.size(); ++i) {
      std::copy(batch[i].features.begin(), batch[i].features.end(),
                x.row_data(i));
    }
    StatusOr<Matrix> logits = model_->ScoreFeatures(x);
    auto done = std::chrono::steady_clock::now();

    for (size_t i = 0; i < batch.size(); ++i) {
      if (!logits.ok()) {
        batch[i].promise.set_exception(std::make_exception_ptr(
            std::runtime_error(logits.status().ToString())));
      } else {
        std::vector<double> row(logits->row_data(i),
                                logits->row_data(i) + logits->cols());
        batch[i].promise.set_value(std::move(row));
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_rows_.push_back(batch.size());
      for (const Request& req : batch) {
        double ms = std::chrono::duration<double, std::milli>(
                        done - req.enqueued)
                        .count();
        latencies_ms_.push_back(ms);
      }
      last_complete_ = done;
    }
  }
}

ServeStats ServingEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats stats;
  stats.requests = latencies_ms_.size();
  stats.batches = batch_rows_.size();
  stats.rejected = rejected_;
  stats.max_queue_depth = max_queue_depth_;
  if (!batch_rows_.empty()) {
    size_t total = 0;
    for (size_t b : batch_rows_) total += b;
    stats.mean_batch_rows =
        static_cast<double>(total) / static_cast<double>(batch_rows_.size());
  }
  if (!latencies_ms_.empty()) {
    std::vector<double> sorted = latencies_ms_;
    std::sort(sorted.begin(), sorted.end());
    stats.p50_ms = Percentile(sorted, 0.50);
    stats.p95_ms = Percentile(sorted, 0.95);
    stats.p99_ms = Percentile(sorted, 0.99);
    stats.max_ms = sorted.back();
    double span_s = std::chrono::duration<double>(last_complete_ -
                                                  first_submit_)
                        .count();
    stats.throughput_rps =
        span_s > 0.0 ? static_cast<double>(stats.requests) / span_s : 0.0;
  }
  return stats;
}

}  // namespace gnn4tdl
