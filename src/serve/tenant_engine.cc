#include "serve/tenant_engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace gnn4tdl {

namespace {

// Batch sizes are small integers; start the buckets at 1 so each size up to
// ~16 lands near its own bucket. The mean reported in ServeStats is computed
// exactly from counters, not from this histogram.
obs::HistogramOptions BatchRowsHistogramOptions() {
  obs::HistogramOptions opts;
  opts.min_value = 1.0;
  opts.num_buckets = 64;
  return opts;
}

}  // namespace

std::string ServeStats::ToString() const {
  std::ostringstream out;
  out << "requests=" << requests << " batches=" << batches
      << " rejected=" << rejected << " mean_batch=" << mean_batch_rows
      << " p50_ms=" << p50_ms << " p95_ms=" << p95_ms << " p99_ms=" << p99_ms
      << " max_ms=" << max_ms << " throughput_rps=" << throughput_rps
      << " max_queue_depth=" << max_queue_depth;
  if (requests > 0) {
    const double n = static_cast<double>(requests);
    out << " mean_wait_ms=" << queue_wait_ms_sum / n
        << " mean_compute_ms=" << compute_ms_sum / n;
  }
  return out.str();
}

MultiTenantEngine::TenantState::TenantState(const Tenant* t)
    : tenant(t), batch_rows_hist(BatchRowsHistogramOptions()) {
  // Resolve the per-tenant metric handles once; registry entries are stable
  // for the process lifetime, so these never dangle. They are only written
  // when obs::MetricsEnabled().
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix = "serve.tenant." + t->name + ".";
  m_requests = &registry.GetCounter(prefix + "requests_total");
  m_rejected = &registry.GetCounter(prefix + "rejected_total");
  m_queue_depth = &registry.GetGauge(prefix + "queue_depth");
  m_latency = &registry.GetHistogram(prefix + "latency_ms");
  m_queue_wait = &registry.GetHistogram(prefix + "queue_wait_ms");
  m_compute = &registry.GetHistogram(prefix + "compute_ms");
}

MultiTenantEngine::MultiTenantEngine(const ModelRegistry* registry,
                                     MultiTenantEngineOptions options)
    : registry_(registry),
      clock_(options.clock != nullptr ? options.clock : obs::RealClock()),
      batch_rows_hist_(BatchRowsHistogramOptions()),
      recorder_(options.recorder) {
  GNN4TDL_CHECK(registry_ != nullptr);
  for (const Tenant* t : registry_->Tenants()) {
    auto state = std::make_unique<TenantState>(t);
    state->credits = t->options.weight;
    tenants_.push_back(std::move(state));
  }
  // Pre-warm the shared kernel pool (sized by GNN4TDL_THREADS) so the first
  // batch forward does not pay worker spin-up inside its latency budget.
  ThreadPool::Global();
  worker_ = std::thread([this] { WorkerLoop(); });
}

MultiTenantEngine::~MultiTenantEngine() { Stop(); }

void MultiTenantEngine::Stop() {
  bool should_join = false;
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    // Exactly one caller joins: concurrent Stop()/destructor races on
    // std::thread::join are undefined behavior.
    should_join = !worker_joined_ && worker_.joinable();
    worker_joined_ = true;
  }
  cv_.NotifyAll();
  if (should_join) worker_.join();
}

StatusOr<std::future<std::vector<double>>> MultiTenantEngine::Submit(
    const std::string& tenant, std::vector<double> features) {
  StatusOr<SubmitResult> result = SubmitTraced(tenant, std::move(features));
  if (!result.ok()) return result.status();
  return std::move(result->future);
}

StatusOr<SubmitResult> MultiTenantEngine::SubmitTraced(
    const std::string& tenant, std::vector<double> features,
    uint64_t trace_id) {
  Request req;
  req.features = std::move(features);
  req.ctx.trace_id = trace_id;
  req.ctx.enqueued_ns = clock_->NowNanos();
  std::future<std::vector<double>> future = req.promise.get_future();

  TenantState* t = nullptr;
  size_t tenant_depth = 0;
  size_t total_depth = 0;
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::FailedPrecondition("serving engine is stopped");
    }
    t = FindTenantLocked(tenant);
    if (t == nullptr) {
      return Status::NotFound("unknown tenant '" + tenant + "'");
    }
    const FrozenModel* model = t->tenant->model;
    if (req.features.size() != model->feature_dim()) {
      return Status::InvalidArgument(
          "feature vector has " + std::to_string(req.features.size()) +
          " entries, tenant '" + tenant + "' expects " +
          std::to_string(model->feature_dim()));
    }
    if (t->queue.size() >= t->tenant->options.queue_capacity) {
      ++t->rejected;
      ++rejected_;
      if (obs::MetricsEnabled()) {
        obs::MetricsRegistry::Global()
            .GetCounter("serve.rejected_total")
            .Increment();
        t->m_rejected->Increment();
      }
      return Status::ResourceExhausted(
          "tenant '" + tenant + "' queue is full (" +
          std::to_string(t->tenant->options.queue_capacity) + " rows)");
    }
    // Auto-assigned trace ids are handed out under mu_ in submission order,
    // so a serialized submitter sees deterministic ids run to run. Admission
    // rejections above never consume an id.
    if (req.ctx.trace_id == 0) req.ctx.trace_id = next_trace_id_++;
    if (!t->any_request) {
      t->any_request = true;
      t->first_submit_ns = req.ctx.enqueued_ns;
    }
    if (!any_request_) {
      any_request_ = true;
      first_submit_ns_ = req.ctx.enqueued_ns;
    }
    trace_id = req.ctx.trace_id;
    t->queue.push_back(std::move(req));
    ++total_queued_;
    t->max_queue_depth = std::max(t->max_queue_depth, t->queue.size());
    max_queue_depth_ = std::max(max_queue_depth_, total_queued_);
    tenant_depth = t->queue.size();
    total_depth = total_queued_;
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.queue_depth")
        .Set(static_cast<double>(total_depth));
    t->m_queue_depth->Set(static_cast<double>(tenant_depth));
  }
  cv_.NotifyOne();
  SubmitResult result;
  result.trace_id = trace_id;
  result.future = std::move(future);
  return result;
}

bool MultiTenantEngine::TenantReadyLocked(const TenantState& t) const {
  if (t.queue.empty()) return false;
  if (stopping_) return true;
  if (t.queue.size() >= t.tenant->options.max_batch) return true;
  const int64_t deadline_ns =
      t.queue.front().ctx.enqueued_ns +
      static_cast<int64_t>(t.tenant->options.deadline_ms * 1e6);
  return clock_->NowNanos() >= deadline_ns;
}

bool MultiTenantEngine::AnyReadyLocked() const {
  for (const auto& t : tenants_) {
    if (TenantReadyLocked(*t)) return true;
  }
  return false;
}

int64_t MultiTenantEngine::EarliestDeadlineRemainingNsLocked() const {
  const int64_t now_ns = clock_->NowNanos();
  int64_t best = -1;
  for (const auto& t : tenants_) {
    if (t->queue.empty()) continue;
    const int64_t deadline_ns =
        t->queue.front().ctx.enqueued_ns +
        static_cast<int64_t>(t->tenant->options.deadline_ms * 1e6);
    const int64_t remaining = deadline_ns - now_ns;
    if (best < 0 || remaining < best) best = remaining;
  }
  return best < 0 ? 0 : best;
}

MultiTenantEngine::TenantState* MultiTenantEngine::PickTenantLocked() {
  const size_t n = tenants_.size();
  if (n == 0) return nullptr;
  // Two passes: one over the current round's credits, and — if every ready
  // tenant has already spent its share — one after refilling, which starts
  // the next round. The scan begins just past the previously picked tenant,
  // so equal-weight tenants interleave instead of the lowest index winning
  // every tie.
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (size_t i = 0; i < n; ++i) {
      TenantState& t = *tenants_[(rr_cursor_ + i) % n];
      if (t.credits > 0 && TenantReadyLocked(t)) {
        --t.credits;
        rr_cursor_ = (rr_cursor_ + i + 1) % n;
        return &t;
      }
    }
    for (auto& t : tenants_) t->credits = t->tenant->options.weight;
  }
  return nullptr;
}

const MultiTenantEngine::TenantState* MultiTenantEngine::FindTenantLocked(
    const std::string& name) const {
  for (const auto& t : tenants_) {
    if (t->tenant->name == name) return t.get();
  }
  return nullptr;
}

void MultiTenantEngine::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    TenantState* ts = nullptr;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && total_queued_ == 0) cv_.Wait(lock);
      if (total_queued_ == 0) break;  // stopping_ and fully drained

      // Hold the earliest-deadline batch open until some tenant fills its
      // max_batch or times out; stop requests close batches immediately. The
      // remaining wait is recomputed from the injected clock each iteration
      // (rather than passing an absolute time_point to wait_until) so the
      // deadline logic follows a FakeClock in tests.
      while (!stopping_ && !AnyReadyLocked()) {
        const int64_t remaining_ns = EarliestDeadlineRemainingNsLocked();
        if (remaining_ns <= 0) break;
        cv_.WaitForNanos(lock, remaining_ns);
      }

      ts = PickTenantLocked();
      if (ts == nullptr) continue;  // spurious wake: nothing ready yet
      const size_t take =
          std::min(ts->queue.size(), ts->tenant->options.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(ts->queue.front()));
        ts->queue.pop_front();
      }
      total_queued_ -= take;
    }

    const FrozenModel* model = ts->tenant->model;
    const int64_t batch_start_ns = clock_->NowNanos();
    // Capture the batch's span subtree for the flight recorder (spans opened
    // on this worker thread: serve/batch, serve/attach, kernel scopes opened
    // before the pool fan-out). With the recorder off no sink is installed
    // and the spans stay the usual tracing-gated no-ops.
    std::vector<obs::SpanRecord> batch_spans;
    StatusOr<Matrix> logits = [&] {
      obs::SpanCapture capture(recorder_.enabled() ? &batch_spans : nullptr);
      obs::TraceSpan span("serve/batch");
      span.AddItems(static_cast<double>(batch.size()));
      for (const Request& req : batch) span.AddRequestId(req.ctx.trace_id);
      Matrix x(batch.size(), model->feature_dim());
      for (size_t i = 0; i < batch.size(); ++i) {
        std::copy(batch[i].features.begin(), batch[i].features.end(),
                  x.row_data(i));
      }
      return model->ScoreFeatures(x);
    }();
    const int64_t done_ns = clock_->NowNanos();

    for (size_t i = 0; i < batch.size(); ++i) {
      if (!logits.ok()) {
        batch[i].promise.set_exception(std::make_exception_ptr(
            std::runtime_error(logits.status().ToString())));
      } else {
        std::vector<double> row(logits->row_data(i),
                                logits->row_data(i) + logits->cols());
        batch[i].promise.set_value(std::move(row));
      }
    }

    const bool metrics = obs::MetricsEnabled();
    batch_rows_hist_.Record(static_cast<double>(batch.size()));
    ts->batch_rows_hist.Record(static_cast<double>(batch.size()));
    if (metrics) {
      obs::MetricsRegistry::Global()
          .GetHistogram("serve.batch_rows", BatchRowsHistogramOptions())
          .Record(static_cast<double>(batch.size()));
    }
    // Kernel work totals of the whole batch: summed over captured kernel
    // spans (op-level wrapper spans included, matching KernelCounters'
    // per-name accounting). Allocated bytes come from the root serve/batch
    // span alone — its thread-local delta already includes every child.
    double batch_flops = 0.0, batch_bytes = 0.0, batch_alloc = 0.0;
    for (const obs::SpanRecord& s : batch_spans) {
      batch_flops += s.flops;
      batch_bytes += s.bytes;
      if (s.name == "serve/batch") batch_alloc = s.alloc_bytes;
    }
    const double slo_ms = ts->tenant->options.slo_ms;
    for (const Request& req : batch) {
      const double wait_ms =
          static_cast<double>(batch_start_ns - req.ctx.enqueued_ns) / 1e6;
      const double compute_ms =
          static_cast<double>(done_ns - batch_start_ns) / 1e6;
      const double ms =
          static_cast<double>(done_ns - req.ctx.enqueued_ns) / 1e6;
      latency_ms_hist_.Record(ms, req.ctx.trace_id);
      queue_wait_ms_hist_.Record(wait_ms, req.ctx.trace_id);
      compute_ms_hist_.Record(compute_ms, req.ctx.trace_id);
      ts->latency_ms_hist.Record(ms, req.ctx.trace_id);
      ts->queue_wait_ms_hist.Record(wait_ms, req.ctx.trace_id);
      ts->compute_ms_hist.Record(compute_ms, req.ctx.trace_id);
      if (metrics) {
        auto& registry = obs::MetricsRegistry::Global();
        registry.GetHistogram("serve.latency_ms").Record(ms, req.ctx.trace_id);
        registry.GetHistogram("serve.queue_wait_ms")
            .Record(wait_ms, req.ctx.trace_id);
        registry.GetHistogram("serve.compute_ms")
            .Record(compute_ms, req.ctx.trace_id);
        registry.GetCounter("serve.requests_total").Increment();
        ts->m_latency->Record(ms, req.ctx.trace_id);
        ts->m_queue_wait->Record(wait_ms, req.ctx.trace_id);
        ts->m_compute->Record(compute_ms, req.ctx.trace_id);
        ts->m_requests->Increment();
      }
      if (recorder_.enabled()) {
        obs::RequestDigest digest;
        digest.tenant = ts->tenant->name;
        digest.trace_id = req.ctx.trace_id;
        digest.enqueued_ns = req.ctx.enqueued_ns;
        digest.queue_wait_ms = wait_ms;
        digest.compute_ms = compute_ms;
        digest.total_ms = ms;
        digest.batch_size = batch.size();
        digest.flops = batch_flops;
        digest.bytes = batch_bytes;
        digest.alloc_bytes = batch_alloc;
        digest.slo_ms = slo_ms;
        digest.slo_breach = ms > slo_ms;
        // Tail sampling: only breaches carry the span subtree into the
        // retained store; ring entries stay span-free.
        if (digest.slo_breach) digest.spans = batch_spans;
        recorder_.Record(std::move(digest));
      }
    }
    {
      MutexLock lock(&mu_);
      ++batches_;
      total_batch_rows_ += batch.size();
      requests_done_ += batch.size();
      last_complete_ns_ = done_ns;
      ++ts->batches;
      ts->total_batch_rows += batch.size();
      ts->requests_done += batch.size();
      ts->last_complete_ns = done_ns;
    }
  }
}

ServeStats MultiTenantEngine::StatsFor(const TenantState& t) const {
  ServeStats stats;
  stats.requests = t.requests_done;
  stats.batches = t.batches;
  stats.rejected = t.rejected;
  stats.max_queue_depth = t.max_queue_depth;
  if (t.batches > 0) {
    stats.mean_batch_rows = static_cast<double>(t.total_batch_rows) /
                            static_cast<double>(t.batches);
  }
  if (t.requests_done > 0) {
    stats.p50_ms = t.latency_ms_hist.Quantile(0.50);
    stats.p95_ms = t.latency_ms_hist.Quantile(0.95);
    stats.p99_ms = t.latency_ms_hist.Quantile(0.99);
    stats.max_ms = t.latency_ms_hist.Max();
    stats.latency_ms_sum = t.latency_ms_hist.Sum();
    stats.queue_wait_ms_sum = t.queue_wait_ms_hist.Sum();
    stats.compute_ms_sum = t.compute_ms_hist.Sum();
    const double span_s =
        static_cast<double>(t.last_complete_ns - t.first_submit_ns) / 1e9;
    stats.throughput_rps =
        span_s > 0.0 ? static_cast<double>(stats.requests) / span_s : 0.0;
  }
  return stats;
}

ServeStats MultiTenantEngine::Stats() const {
  MutexLock lock(&mu_);
  ServeStats stats;
  stats.requests = requests_done_;
  stats.batches = batches_;
  stats.rejected = rejected_;
  stats.max_queue_depth = max_queue_depth_;
  if (batches_ > 0) {
    stats.mean_batch_rows =
        static_cast<double>(total_batch_rows_) / static_cast<double>(batches_);
  }
  if (requests_done_ > 0) {
    stats.p50_ms = latency_ms_hist_.Quantile(0.50);
    stats.p95_ms = latency_ms_hist_.Quantile(0.95);
    stats.p99_ms = latency_ms_hist_.Quantile(0.99);
    stats.max_ms = latency_ms_hist_.Max();
    stats.latency_ms_sum = latency_ms_hist_.Sum();
    stats.queue_wait_ms_sum = queue_wait_ms_hist_.Sum();
    stats.compute_ms_sum = compute_ms_hist_.Sum();
    const double span_s =
        static_cast<double>(last_complete_ns_ - first_submit_ns_) / 1e9;
    stats.throughput_rps =
        span_s > 0.0 ? static_cast<double>(stats.requests) / span_s : 0.0;
  }
  return stats;
}

StatusOr<ServeStats> MultiTenantEngine::TenantStats(
    const std::string& tenant) const {
  MutexLock lock(&mu_);
  const TenantState* t = FindTenantLocked(tenant);
  if (t == nullptr) return Status::NotFound("unknown tenant '" + tenant + "'");
  return StatsFor(*t);
}

StatusOr<double> MultiTenantEngine::TenantLatencyFractionBelow(
    const std::string& tenant, double threshold_ms) const {
  MutexLock lock(&mu_);
  const TenantState* t = FindTenantLocked(tenant);
  if (t == nullptr) return Status::NotFound("unknown tenant '" + tenant + "'");
  const uint64_t total = t->latency_ms_hist.Count();
  if (total == 0) return 1.0;
  uint64_t below = 0;
  for (const auto& [upper, cumulative] : t->latency_ms_hist.CumulativeBuckets()) {
    if (upper <= threshold_ms) {
      below = cumulative;
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total);
}

}  // namespace gnn4tdl
