#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "serve/registry.h"

namespace gnn4tdl {

/// Aggregate serving counters. Latencies are end-to-end per request
/// (submission to completed scoring).
///
/// Precision contract: the engine keeps latency and batch-size distributions
/// in fixed-size log-bucket histograms (obs::Histogram), not per-request
/// history, so memory stays O(1) for any number of requests. The p50/p95/p99
/// fields are therefore histogram estimates with bounded relative error —
/// at the default bucket growth of 2^(1/8), within ~4.4% of an exact sorted
/// percentile. `max_ms`, `requests`, `batches`, `mean_batch_rows`, and
/// `throughput_rps` are exact. `rejected` counts admission-control
/// (queue-full) rejections only; stopped-engine, unknown-tenant, and
/// bad-dimension submissions are caller errors, not load shedding.
struct ServeStats {
  size_t requests = 0;
  size_t batches = 0;
  size_t rejected = 0;
  double mean_batch_rows = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Completed requests divided by the span between the first submission and
  /// the last completion.
  double throughput_rps = 0.0;
  size_t max_queue_depth = 0;
  /// Exact sums of the per-request latency split (queue wait = enqueue ->
  /// batch start; compute = batch start -> completion). By construction
  /// queue_wait_ms_sum + compute_ms_sum == latency_ms_sum up to floating
  /// rounding — CheckAccounting reconciles this.
  double latency_ms_sum = 0.0;
  double queue_wait_ms_sum = 0.0;
  double compute_ms_sum = 0.0;

  std::string ToString() const;
};

/// Request-scoped identity and timing, stamped at Submit and carried through
/// the bounded queue and the batching worker down to the batch trace span
/// and the flight-recorder digest. The trace id is deterministic: callers
/// (e.g. the load generator) pass their own ids, or the engine assigns the
/// next value of a per-engine counter in submission order.
struct RequestContext {
  uint64_t trace_id = 0;
  int64_t enqueued_ns = 0;
};

/// What SubmitTraced hands back: the future plus the trace id under which
/// the request's digest (and, on an SLO breach, its span subtree) can be
/// looked up in the engine's flight recorder.
struct SubmitResult {
  uint64_t trace_id = 0;
  std::future<std::vector<double>> future;
};

/// Engine-level options; per-tenant policy lives in TenantOptions.
struct MultiTenantEngineOptions {
  /// Time source for latency stamping and deadline waits; null means
  /// obs::RealClock(). Tests inject an obs::FakeClock for deterministic
  /// latency assertions.
  const obs::Clock* clock = nullptr;
  /// Flight-recorder policy (on by default — the ring is bounded and the
  /// per-request cost is one striped mutex push). Set recorder.enabled =
  /// false to drop all per-request digest work.
  obs::FlightRecorderOptions recorder;
};

/// Micro-batching scorer over every tenant in a ModelRegistry: each tenant
/// gets its own bounded request queue and batching policy, and one worker
/// thread drains the queues in weighted round-robin order — each scheduling
/// round gives a tenant up to `weight` batch closures before the scan moves
/// on, so a saturated tenant cannot starve an idle one (its backlog only
/// consumes its own share of batch slots, and the idle tenant's first request
/// is picked up within one batch of becoming ready).
///
/// Admission control: a Submit beyond the tenant's queue_capacity returns
/// kResourceExhausted — typed backpressure the caller can retry or shed, never
/// an exception — and is counted in both engine stats and the serve.rejected
/// metrics. A batch closes when it reaches the tenant's max_batch or when the
/// tenant's oldest request has waited deadline_ms (same policy as the
/// original single-tenant engine, now per tenant).
///
/// Threading: one batching worker for the whole process, so batch forwards
/// never contend with each other for the shared kernel ThreadPool and scoring
/// stays deterministic for a fixed thread count (see common/parallel.h). The
/// registry must outlive the engine and must not gain tenants after the
/// engine is constructed (the tenant list is snapshotted here).
///
/// Observability: aggregate accounting mirrors the original engine
/// (serve.requests_total, serve.rejected_total, serve.queue_depth,
/// serve.latency_ms + the serve.queue_wait_ms / serve.compute_ms split,
/// serve.batch_rows); per-tenant accounting lands under serve.tenant.<name>.*
/// when obs::MetricsEnabled(). Every batch forward runs under a "serve/batch"
/// trace span tagged with its member request trace ids. Every completed
/// request additionally lands a digest in the engine's flight recorder
/// (recorder()), latency-histogram buckets carry the most recent trace id as
/// a Prometheus exemplar, and requests breaching their tenant's slo_ms keep
/// their full batch span subtree in the recorder's retained store (see
/// docs/OBSERVABILITY.md, "Request tracing & flight recorder").
class MultiTenantEngine {
 public:
  explicit MultiTenantEngine(const ModelRegistry* registry,
                             MultiTenantEngineOptions options = {});
  ~MultiTenantEngine();

  MultiTenantEngine(const MultiTenantEngine&) = delete;
  MultiTenantEngine& operator=(const MultiTenantEngine&) = delete;

  /// Enqueues one featurized row for `tenant`. The future resolves to the
  /// row's logits; scoring errors surface through the future. Typed
  /// submission failures:
  ///   kResourceExhausted — tenant queue full (admission control; counted as
  ///                        rejected),
  ///   kNotFound          — unknown tenant,
  ///   kInvalidArgument   — wrong feature dimension,
  ///   kFailedPrecondition — engine stopped.
  [[nodiscard]] StatusOr<std::future<std::vector<double>>> Submit(
      const std::string& tenant, std::vector<double> features);

  /// Submit with request-scoped tracing: the returned trace id tags the
  /// request through the batch span, the latency-histogram exemplars, and
  /// the flight recorder. Pass trace_id = 0 to let the engine assign the
  /// next id in submission order (deterministic for a serialized submitter);
  /// nonzero caller ids are used verbatim and should be unique per request.
  /// Same typed failures as Submit.
  [[nodiscard]] StatusOr<SubmitResult> SubmitTraced(
      const std::string& tenant, std::vector<double> features,
      uint64_t trace_id = 0);

  /// Drains every queue and joins the worker. Idempotent; the destructor
  /// calls it.
  void Stop();

  /// Accounting summed over all tenants.
  ServeStats Stats() const;
  /// One tenant's accounting (kNotFound for unknown names). max_queue_depth
  /// is the tenant's own queue; the aggregate Stats() tracks total depth.
  [[nodiscard]] StatusOr<ServeStats> TenantStats(
      const std::string& tenant) const;
  /// Fraction of the tenant's completed requests whose end-to-end latency
  /// was <= threshold_ms (SLO attainment, from the latency histogram's
  /// cumulative buckets — resolution is one bucket, ~9% in value). 1.0 when
  /// the tenant has completed nothing. kNotFound for unknown names.
  [[nodiscard]] StatusOr<double> TenantLatencyFractionBelow(
      const std::string& tenant, double threshold_ms) const;

  size_t num_tenants() const {
    MutexLock lock(&mu_);
    return tenants_.size();
  }
  const ModelRegistry* registry() const { return registry_; }

  /// The engine's flight recorder: bounded ring of completed-request digests
  /// plus retained SLO-breach traces (see obs/recorder.h). Snapshot/FindTrace
  /// are safe while the engine is serving.
  const obs::FlightRecorder& recorder() const { return recorder_; }

 private:
  struct Request {
    std::vector<double> features;
    std::promise<std::vector<double>> promise;
    RequestContext ctx;
  };

  /// Per-tenant queue + accounting. Histograms shard internally; everything
  /// else is guarded by the engine-wide mu_.
  struct TenantState {
    const Tenant* tenant = nullptr;
    std::deque<Request> queue;
    /// WRR credits remaining this round.
    size_t credits = 0;

    obs::Histogram latency_ms_hist;
    obs::Histogram queue_wait_ms_hist;
    obs::Histogram compute_ms_hist;
    obs::Histogram batch_rows_hist;
    size_t requests_done = 0;
    size_t batches = 0;
    size_t total_batch_rows = 0;
    size_t rejected = 0;
    size_t max_queue_depth = 0;
    bool any_request = false;
    int64_t first_submit_ns = 0;
    int64_t last_complete_ns = 0;

    /// Global-registry handles, resolved once (names are
    /// serve.tenant.<name>.*). Written only when obs::MetricsEnabled().
    obs::Counter* m_requests = nullptr;
    obs::Counter* m_rejected = nullptr;
    obs::Gauge* m_queue_depth = nullptr;
    obs::Histogram* m_latency = nullptr;
    obs::Histogram* m_queue_wait = nullptr;
    obs::Histogram* m_compute = nullptr;

    explicit TenantState(const Tenant* t);
  };

  void WorkerLoop();
  /// True when some tenant has a closable batch: full to max_batch, past its
  /// oldest request's deadline, or anything queued while stopping.
  bool AnyReadyLocked() const GNN4TDL_REQUIRES(mu_);
  bool TenantReadyLocked(const TenantState& t) const GNN4TDL_REQUIRES(mu_);
  /// Nanoseconds until the earliest pending deadline (0 when one passed).
  int64_t EarliestDeadlineRemainingNsLocked() const GNN4TDL_REQUIRES(mu_);
  /// WRR pick: next ready tenant with credits, refilling a spent round.
  TenantState* PickTenantLocked() GNN4TDL_REQUIRES(mu_);
  const TenantState* FindTenantLocked(const std::string& name) const
      GNN4TDL_REQUIRES(mu_);
  TenantState* FindTenantLocked(const std::string& name)
      GNN4TDL_REQUIRES(mu_) {
    return const_cast<TenantState*>(
        static_cast<const MultiTenantEngine*>(this)->FindTenantLocked(name));
  }
  ServeStats StatsFor(const TenantState& t) const GNN4TDL_REQUIRES(mu_);

  const ModelRegistry* const registry_;
  const obs::Clock* const clock_;

  mutable Mutex mu_;
  CondVar cv_;
  bool stopping_ GNN4TDL_GUARDED_BY(mu_) = false;
  size_t total_queued_ GNN4TDL_GUARDED_BY(mu_) = 0;
  size_t rr_cursor_ GNN4TDL_GUARDED_BY(mu_) = 0;
  // The vector itself is filled in the constructor (before the worker
  // starts) and never resized; the TenantState contents are mutated under
  // mu_, except the internally-sharded histograms and the const-after-
  // construction tenant/metric handles.
  std::vector<std::unique_ptr<TenantState>> tenants_ GNN4TDL_GUARDED_BY(mu_);

  // Aggregate accounting, mirroring the single-tenant engine's fields.
  obs::Histogram latency_ms_hist_;    // lint:unguarded(Histogram shards internally)
  obs::Histogram queue_wait_ms_hist_; // lint:unguarded(Histogram shards internally)
  obs::Histogram compute_ms_hist_;    // lint:unguarded(Histogram shards internally)
  obs::Histogram batch_rows_hist_;    // lint:unguarded(Histogram shards internally)
  obs::FlightRecorder recorder_;      // lint:unguarded(FlightRecorder locks internally)
  uint64_t next_trace_id_ GNN4TDL_GUARDED_BY(mu_) = 1;
  size_t requests_done_ GNN4TDL_GUARDED_BY(mu_) = 0;
  size_t batches_ GNN4TDL_GUARDED_BY(mu_) = 0;
  size_t total_batch_rows_ GNN4TDL_GUARDED_BY(mu_) = 0;
  size_t rejected_ GNN4TDL_GUARDED_BY(mu_) = 0;
  size_t max_queue_depth_ GNN4TDL_GUARDED_BY(mu_) = 0;
  bool any_request_ GNN4TDL_GUARDED_BY(mu_) = false;
  int64_t first_submit_ns_ GNN4TDL_GUARDED_BY(mu_) = 0;
  int64_t last_complete_ns_ GNN4TDL_GUARDED_BY(mu_) = 0;

  /// True once some Stop() call has claimed the join; makes concurrent
  /// Stop()/destructor calls join the worker exactly once (std::thread::join
  /// from two threads at once is undefined behavior — flushed out by the
  /// lock-discipline triage, see docs/STATIC_ANALYSIS.md).
  bool worker_joined_ GNN4TDL_GUARDED_BY(mu_) = false;
  std::thread worker_;  // lint:unguarded(started in ctor; joined exactly once via worker_joined_)
};

}  // namespace gnn4tdl
