#pragma once

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "kernels/fmatrix.h"
#include "kernels/kernels.h"
#include "models/knn_gnn.h"

namespace gnn4tdl {

/// Single-precision forward-only scorer: the f32 serving twin of
/// InstanceGraphGnn::ScoreOnGraph. Built once from a restored model — the
/// trained encoder+head parameters are cast down to float at that boundary
/// and the double training state is never touched again — then Score() runs
/// the whole attached-batch forward pass through the dispatched f32 kernels
/// (kernels::Dispatch(): AVX2+FMA when the CPU has it, bit-identical scalar
/// otherwise).
///
/// Numerics: per-batch graph operators (GCN/mean normalization, GAT edge
/// index) are still computed in double — they are O(edges) setup, not the
/// bandwidth-bound hot path — and cast down per batch. Dense propagation and
/// attention run in f32; logits match the f64 path to ~1e-4 relative for the
/// 2-layer serving configs (tolerances documented in docs/KERNELS.md and
/// enforced by tests/serve_precision_test.cc).
///
/// Supported backbones: GCN (incl. jumping knowledge), SAGE, GIN, GAT, APPNP.
/// GGNN, graph transformer, and PairNorm configurations are not mirrored —
/// FrozenModel silently keeps those on the f64 path (Supports() is the gate).
class F32Scorer {
 public:
  /// True when `options` describe a model this scorer can mirror.
  static bool Supports(const InstanceGraphGnnOptions& options);

  /// Extracts and casts the trained parameters of a fitted/restored model.
  /// Fails if Supports() is false or the model has no trained parameters.
  static StatusOr<F32Scorer> Build(const InstanceGraphGnn& model);

  /// Forward pass on an attached batch: `x` holds one f32 feature row per
  /// node of `graph`, `degrees` are the extended-graph degrees the
  /// normalization must use (same contract as ScoreOnGraph's
  /// degree_override). Returns per-node head logits.
  StatusOr<kernels::FMatrix> Score(const kernels::FMatrix& x,
                                   const Graph& graph,
                                   const std::vector<double>& degrees) const;

  size_t num_outputs() const { return head_w_.cols(); }

 private:
  F32Scorer() = default;

  /// One encoder layer's casted parameters; which members are populated
  /// depends on the backbone (see the per-backbone forward in f32_scorer.cc).
  struct Layer {
    kernels::FMatrix w;        // GCN W / SAGE self W / GIN W1 / APPNP W1...
    std::vector<float> b;      // ...and its bias (empty = none)
    kernels::FMatrix w2;       // SAGE neighbor W / GIN W2
    std::vector<float> b2;     // GIN b2
    float eps = 0.0f;          // GIN
    // GAT per-head parameters: projection (in x head_dim) and attention
    // vectors (head_dim x 1, stored as FMatrix columns).
    std::vector<kernels::FMatrix> head_proj;
    std::vector<kernels::FMatrix> attn_src;
    std::vector<kernels::FMatrix> attn_dst;
  };

  InstanceGraphGnnOptions options_;
  std::vector<Layer> layers_;
  kernels::FMatrix head_w_;
  std::vector<float> head_b_;
};

}  // namespace gnn4tdl
