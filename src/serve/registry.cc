#include "serve/registry.h"

#include <utility>

namespace gnn4tdl {

Status ModelRegistry::AddTenantLocked(const std::string& name,
                                      const FrozenModel* model,
                                      TenantOptions options) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  for (const auto& t : tenants_) {
    if (t->name == name) {
      return Status::InvalidArgument("tenant '" + name +
                                     "' is already registered");
    }
  }
  if (options.max_batch == 0) options.max_batch = 1;
  if (options.deadline_ms < 0.0) options.deadline_ms = 0.0;
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.weight == 0) options.weight = 1;
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->model = model;
  tenant->options = options;
  tenants_.push_back(std::move(tenant));
  return Status::OK();
}

Status ModelRegistry::AddTenant(const std::string& name, FrozenModel model,
                                TenantOptions options) {
  MutexLock lock(&mu_);
  auto owned = std::make_unique<FrozenModel>(std::move(model));
  GNN4TDL_RETURN_IF_ERROR(AddTenantLocked(name, owned.get(), options));
  owned_models_.push_back(std::move(owned));
  return Status::OK();
}

Status ModelRegistry::AddTenant(const std::string& name,
                                const FrozenModel* model,
                                TenantOptions options) {
  if (model == nullptr) {
    return Status::InvalidArgument("tenant '" + name + "' has a null model");
  }
  MutexLock lock(&mu_);
  return AddTenantLocked(name, model, options);
}

const Tenant* ModelRegistry::Find(const std::string& name) const {
  MutexLock lock(&mu_);
  for (const auto& t : tenants_) {
    if (t->name == name) return t.get();
  }
  return nullptr;
}

std::vector<const Tenant*> ModelRegistry::Tenants() const {
  MutexLock lock(&mu_);
  std::vector<const Tenant*> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t.get());
  return out;
}

size_t ModelRegistry::size() const {
  MutexLock lock(&mu_);
  return tenants_.size();
}

}  // namespace gnn4tdl
