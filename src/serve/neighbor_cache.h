#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/knn_index.h"

namespace gnn4tdl {

/// Options for NeighborCache.
struct NeighborCacheOptions {
  /// Total cached queries across all stripes. 0 disables caching entirely.
  size_t capacity = 4096;
  /// Independent mutex-guarded stripes; concurrent lookups for different
  /// queries contend only within a stripe.
  size_t stripes = 8;
};

/// Read-through cache for kNN attachment queries: maps an exact featurized
/// row (plus the requested k) to the neighbor hits the index returned for it.
///
/// Exactness contract: a hit returns the *stored* hit vector byte for byte —
/// the cached path can never change which neighbors a row attaches to or
/// their similarity values, so cached and uncached attachment are bit-exact
/// (tests/serve_tenant_test.cc asserts this end to end through a frozen
/// model). Keys hash the raw double bytes of the query; a hash collision is
/// detected by comparing the stored query and treated as a miss, never as a
/// wrong answer.
///
/// Bounded: each stripe evicts its oldest entry (FIFO) once the per-stripe
/// share of `capacity` is exceeded. Thread-safe; when obs metrics are on,
/// lookups mirror into serve.cache.hits_total / serve.cache.misses_total.
class NeighborCache {
 public:
  explicit NeighborCache(NeighborCacheOptions options = {});
  NeighborCache(const NeighborCache&) = delete;
  NeighborCache& operator=(const NeighborCache&) = delete;

  /// True (and fills *hits) when `query` (length dim) with this k is cached.
  bool Lookup(const double* query, size_t dim, size_t k,
              std::vector<KnnHit>* hits) const;

  /// Stores the index's answer for `query`. Overwrites a colliding key.
  void Insert(const double* query, size_t dim, size_t k,
              const std::vector<KnnHit>& hits);

  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    size_t entries = 0;
  };
  CacheStats Stats() const;

 private:
  struct Entry {
    std::vector<double> query;
    size_t k = 0;
    std::vector<KnnHit> hits;
  };
  struct alignas(64) Stripe {
    mutable Mutex mu;
    std::unordered_map<uint64_t, Entry> map GNN4TDL_GUARDED_BY(mu);
    std::deque<uint64_t> fifo
        GNN4TDL_GUARDED_BY(mu);  // insertion order for eviction
    mutable size_t hits GNN4TDL_GUARDED_BY(mu) = 0;
    mutable size_t misses GNN4TDL_GUARDED_BY(mu) = 0;
    size_t evictions GNN4TDL_GUARDED_BY(mu) = 0;
  };

  /// Clamps zero stripes to 1 and capacity to at least one entry per stripe,
  /// so options_ can be const after construction.
  static NeighborCacheOptions Normalize(NeighborCacheOptions options);

  static uint64_t Key(const double* query, size_t dim, size_t k);
  Stripe& StripeFor(uint64_t key) const;

  const NeighborCacheOptions options_;
  const size_t per_stripe_capacity_;
  // Sized once in the constructor, never resized; per-stripe state is guarded
  // by each stripe's own mu.
  mutable std::vector<Stripe> stripes_;  // lint:unguarded(fixed size after construction; elements self-guard)
};

}  // namespace gnn4tdl
