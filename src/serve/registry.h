#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/frozen_model.h"

namespace gnn4tdl {

/// Per-tenant serving policy: batching shape, admission bound, scheduling
/// weight, and the latency objective reports are judged against.
struct TenantOptions {
  /// A batch for this tenant closes as soon as it holds this many rows...
  size_t max_batch = 16;
  /// ...or when the tenant's oldest queued row has waited this long.
  double deadline_ms = 2.0;
  /// Admission bound: submissions beyond this many queued rows are rejected
  /// with kResourceExhausted instead of growing the queue without bound.
  size_t queue_capacity = 4096;
  /// Weighted-round-robin share. A tenant with weight 2 closes (up to) twice
  /// as many batches per scheduling round as a weight-1 tenant when both have
  /// work ready. Zero is treated as 1.
  size_t weight = 1;
  /// End-to-end latency objective; TenantLatencyFractionBelow and the load
  /// harness report attainment against it. Accounting only — scheduling never
  /// reads it.
  double slo_ms = 50.0;
};

/// One registered tenant: a stable name, the model serving its traffic, and
/// its policy. Pointers returned by ModelRegistry stay valid for the
/// registry's lifetime.
struct Tenant {
  std::string name;
  const FrozenModel* model = nullptr;
  TenantOptions options;
};

/// Process-wide model hosting: many FrozenModels, one per tenant, behind one
/// registry. Tenants are keyed by name; each keeps its own serving policy, so
/// one process can serve e.g. an f32 low-latency tenant next to an f64
/// batch-heavy one (per-tenant precision comes from the v2 artifact or a
/// load-time override — see FrozenModelOptions).
///
/// Models may be registered owned (the registry keeps them alive) or borrowed
/// (caller guarantees lifetime — how ServingEngine wraps its single model).
/// Registration is mutex-guarded, but the intended protocol is: register all
/// tenants, then construct the MultiTenantEngine — the engine snapshots the
/// tenant list at construction and never sees later additions.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a tenant owning its model. Duplicate names and empty names are
  /// rejected; a zero weight is bumped to 1, zero max_batch/queue_capacity
  /// behave like ServingOptions (bumped to 1).
  [[nodiscard]] Status AddTenant(const std::string& name, FrozenModel model,
                                 TenantOptions options = {});
  /// Registers a tenant borrowing `model`, which must outlive the registry.
  [[nodiscard]] Status AddTenant(const std::string& name,
                                 const FrozenModel* model,
                                 TenantOptions options = {});

  /// Null when no tenant has that name.
  const Tenant* Find(const std::string& name) const;
  /// All tenants in registration order (the WRR scan order).
  std::vector<const Tenant*> Tenants() const;
  size_t size() const;

 private:
  Status AddTenantLocked(const std::string& name, const FrozenModel* model,
                         TenantOptions options) GNN4TDL_REQUIRES(mu_);

  mutable Mutex mu_;
  /// unique_ptr for pointer stability across vector growth.
  std::vector<std::unique_ptr<Tenant>> tenants_ GNN4TDL_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<FrozenModel>> owned_models_
      GNN4TDL_GUARDED_BY(mu_);
};

}  // namespace gnn4tdl
