#include "serve/f32_scorer.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>

#include "gnn/gat.h"

namespace gnn4tdl {

namespace {

using kernels::FAct;
using kernels::FCsr;
using kernels::FMatrix;

/// Cursor over the flat trained-parameter list, checking each matrix's shape
/// against what the documented registration order says comes next.
class ParamReader {
 public:
  explicit ParamReader(const std::vector<Matrix>& params) : params_(params) {}

  Status Matrix2d(size_t rows, size_t cols, const char* what, FMatrix* out) {
    GNN4TDL_RETURN_IF_ERROR(Check(rows, cols, what));
    *out = FMatrix::FromDouble(params_[next_++]);
    return Status::OK();
  }

  Status RowVector(size_t cols, const char* what, std::vector<float>* out) {
    GNN4TDL_RETURN_IF_ERROR(Check(1, cols, what));
    const Matrix& m = params_[next_++];
    out->resize(cols);
    for (size_t j = 0; j < cols; ++j) (*out)[j] = static_cast<float>(m(0, j));
    return Status::OK();
  }

  Status Scalar(const char* what, float* out) {
    GNN4TDL_RETURN_IF_ERROR(Check(1, 1, what));
    *out = static_cast<float>(params_[next_++](0, 0));
    return Status::OK();
  }

  Status Done() const {
    if (next_ != params_.size()) {
      return Status::Internal(
          "f32 scorer: " + std::to_string(params_.size() - next_) +
          " unconsumed trained parameters (registration order mismatch)");
    }
    return Status::OK();
  }

 private:
  Status Check(size_t rows, size_t cols, const char* what) const {
    if (next_ >= params_.size()) {
      return Status::Internal(std::string("f32 scorer: parameter list ended "
                                          "before ") +
                              what);
    }
    const Matrix& m = params_[next_];
    if (m.rows() != rows || m.cols() != cols) {
      return Status::Internal(
          std::string("f32 scorer: ") + what + " expected " +
          std::to_string(rows) + "x" + std::to_string(cols) + ", got " +
          std::to_string(m.rows()) + "x" + std::to_string(m.cols()));
    }
    return Status::OK();
  }

  const std::vector<Matrix>& params_;
  size_t next_ = 0;
};

/// x <- x concatenated column-wise with y (same row count).
FMatrix ConcatCols(const FMatrix& a, const FMatrix& b) {
  GNN4TDL_CHECK_EQ(a.rows(), b.rows());
  FMatrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    float* dst = out.row_data(r);
    const float* pa = a.row_data(r);
    const float* pb = b.row_data(r);
    for (size_t j = 0; j < a.cols(); ++j) dst[j] = pa[j];
    for (size_t j = 0; j < b.cols(); ++j) dst[a.cols() + j] = pb[j];
  }
  return out;
}

}  // namespace

bool F32Scorer::Supports(const InstanceGraphGnnOptions& o) {
  if (o.use_pair_norm) return false;  // couples all rows through batch stats
  switch (o.backbone) {
    case GnnBackbone::kGcn:
    case GnnBackbone::kSage:
    case GnnBackbone::kGin:
    case GnnBackbone::kGat:
    case GnnBackbone::kAppnp:
      return true;
    case GnnBackbone::kGgnn:
    case GnnBackbone::kTransformer:
      return false;
  }
  return false;
}

StatusOr<F32Scorer> F32Scorer::Build(const InstanceGraphGnn& model) {
  const InstanceGraphGnnOptions& o = model.options();
  if (!Supports(o)) {
    return Status::InvalidArgument(
        std::string("f32 serving does not support backbone ") +
        GnnBackboneName(o.backbone) +
        (o.use_pair_norm ? " with pair norm" : ""));
  }
  StatusOr<std::vector<Matrix>> params = model.TrainedParameterMatrices();
  if (!params.ok()) return params.status();

  F32Scorer scorer;
  scorer.options_ = o;
  ParamReader reader(*params);
  const size_t h = o.hidden_dim;
  const size_t in_dim = model.feature_cache().cols();
  size_t dim = in_dim;

  switch (o.backbone) {
    case GnnBackbone::kGcn:
      for (size_t l = 0; l < o.num_layers; ++l) {
        Layer layer;
        GNN4TDL_RETURN_IF_ERROR(reader.Matrix2d(dim, h, "gcn W", &layer.w));
        GNN4TDL_RETURN_IF_ERROR(reader.RowVector(h, "gcn b", &layer.b));
        scorer.layers_.push_back(std::move(layer));
        dim = h;
      }
      break;
    case GnnBackbone::kSage:
      for (size_t l = 0; l < o.num_layers; ++l) {
        Layer layer;
        GNN4TDL_RETURN_IF_ERROR(
            reader.Matrix2d(dim, h, "sage self W", &layer.w));
        GNN4TDL_RETURN_IF_ERROR(reader.RowVector(h, "sage self b", &layer.b));
        GNN4TDL_RETURN_IF_ERROR(
            reader.Matrix2d(dim, h, "sage neighbor W", &layer.w2));
        scorer.layers_.push_back(std::move(layer));
        dim = h;
      }
      break;
    case GnnBackbone::kGin:
      for (size_t l = 0; l < o.num_layers; ++l) {
        Layer layer;
        GNN4TDL_RETURN_IF_ERROR(reader.Scalar("gin eps", &layer.eps));
        GNN4TDL_RETURN_IF_ERROR(reader.Matrix2d(dim, h, "gin W1", &layer.w));
        GNN4TDL_RETURN_IF_ERROR(reader.RowVector(h, "gin b1", &layer.b));
        GNN4TDL_RETURN_IF_ERROR(reader.Matrix2d(h, h, "gin W2", &layer.w2));
        GNN4TDL_RETURN_IF_ERROR(reader.RowVector(h, "gin b2", &layer.b2));
        scorer.layers_.push_back(std::move(layer));
        dim = h;
      }
      break;
    case GnnBackbone::kGat: {
      const size_t heads = std::max<size_t>(o.gat_heads, 1);
      if (h % heads != 0) {
        return Status::InvalidArgument(
            "f32 scorer: GAT hidden_dim not divisible by gat_heads");
      }
      const size_t head_dim = h / heads;
      for (size_t l = 0; l < o.num_layers; ++l) {
        Layer layer;
        for (size_t head = 0; head < heads; ++head) {
          FMatrix a_src, a_dst;
          GNN4TDL_RETURN_IF_ERROR(
              reader.Matrix2d(head_dim, 1, "gat attn_src", &a_src));
          GNN4TDL_RETURN_IF_ERROR(
              reader.Matrix2d(head_dim, 1, "gat attn_dst", &a_dst));
          layer.attn_src.push_back(std::move(a_src));
          layer.attn_dst.push_back(std::move(a_dst));
        }
        for (size_t head = 0; head < heads; ++head) {
          FMatrix proj;
          GNN4TDL_RETURN_IF_ERROR(
              reader.Matrix2d(dim, head_dim, "gat proj W", &proj));
          layer.head_proj.push_back(std::move(proj));
        }
        scorer.layers_.push_back(std::move(layer));
        dim = h;
      }
      break;
    }
    case GnnBackbone::kAppnp: {
      Layer layer;
      GNN4TDL_RETURN_IF_ERROR(reader.Matrix2d(dim, h, "appnp W1", &layer.w));
      GNN4TDL_RETURN_IF_ERROR(reader.RowVector(h, "appnp b1", &layer.b));
      GNN4TDL_RETURN_IF_ERROR(reader.Matrix2d(h, h, "appnp W2", &layer.w2));
      GNN4TDL_RETURN_IF_ERROR(reader.RowVector(h, "appnp b2", &layer.b2));
      scorer.layers_.push_back(std::move(layer));
      dim = h;
      break;
    }
    default:
      return Status::Internal("f32 scorer: unreachable backbone");
  }

  const size_t emb_dim =
      (o.use_jumping_knowledge && o.backbone == GnnBackbone::kGcn)
          ? h * o.num_layers
          : h;
  const size_t out_dim = model.output_dim();
  GNN4TDL_RETURN_IF_ERROR(
      reader.Matrix2d(emb_dim, out_dim, "head W", &scorer.head_w_));
  GNN4TDL_RETURN_IF_ERROR(reader.RowVector(out_dim, "head b", &scorer.head_b_));
  GNN4TDL_RETURN_IF_ERROR(reader.Done());
  return scorer;
}

StatusOr<FMatrix> F32Scorer::Score(const FMatrix& x, const Graph& graph,
                                   const std::vector<double>& degrees) const {
  const InstanceGraphGnnOptions& o = options_;
  const size_t num_layers = layers_.size();

  // Per-batch operator, normalized in double with the extended-graph degrees
  // (same arithmetic as the f64 path) and cast down once.
  FCsr adj;
  GatLayer::EdgeIndex edge_index;
  FCsr gat_pattern;
  switch (o.backbone) {
    case GnnBackbone::kGcn:
    case GnnBackbone::kAppnp:
      adj = FCsr::FromDouble(GcnNormalizedWithDegrees(graph, degrees));
      break;
    case GnnBackbone::kSage:
      adj = FCsr::FromDouble(RowNormalizedWithDegrees(graph, degrees));
      break;
    case GnnBackbone::kGin:
      adj = FCsr::FromDouble(graph.adjacency());
      break;
    case GnnBackbone::kGat:
      edge_index = GatLayer::BuildEdgeIndex(graph);
      gat_pattern = FCsr::FromDouble(edge_index.pattern);
      break;
    default:
      return Status::Internal("f32 scorer: unreachable backbone");
  }

  FMatrix h = x;
  FMatrix scratch, scratch2, scratch3;
  std::vector<FMatrix> jk_outputs;

  switch (o.backbone) {
    case GnnBackbone::kGcn:
      for (size_t l = 0; l < num_layers; ++l) {
        const Layer& layer = layers_[l];
        kernels::Matmul(h, layer.w, &scratch);
        kernels::BiasAct(&scratch, layer.b.data(), FAct::kNone);
        // Aggregation + interior relu in one pass (bias rides before the
        // SpMM, per GCN semantics); bit-identical to Spmm + BiasAct.
        kernels::SpmmBiasAct(adj, scratch, nullptr,
                             l + 1 < num_layers ? FAct::kRelu : FAct::kNone,
                             &h);
        if (o.use_jumping_knowledge) jk_outputs.push_back(h);
      }
      if (o.use_jumping_knowledge) {
        h = jk_outputs[0];
        for (size_t l = 1; l < jk_outputs.size(); ++l)
          h = ConcatCols(h, jk_outputs[l]);
      }
      kernels::BiasAct(&h, nullptr, FAct::kRelu);
      break;
    case GnnBackbone::kSage:
      for (const Layer& layer : layers_) {
        kernels::Spmm(adj, h, &scratch);           // mean-aggregated neighbors
        kernels::Matmul(h, layer.w, &scratch2);    // self projection
        kernels::Matmul(scratch, layer.w2, &scratch3);  // neighbor projection
        kernels::ScaleAdd(scratch2, 1.0f, scratch3, 1.0f, &h);
        kernels::BiasAct(&h, layer.b.data(), FAct::kRelu);
      }
      break;
    case GnnBackbone::kGin:
      for (const Layer& layer : layers_) {
        kernels::Spmm(adj, h, &scratch);  // sum-aggregated neighbors
        kernels::ScaleAdd(h, 1.0f + layer.eps, scratch, 1.0f, &scratch2);
        kernels::Matmul(scratch2, layer.w, &scratch);
        kernels::BiasAct(&scratch, layer.b.data(), FAct::kRelu);
        kernels::Matmul(scratch, layer.w2, &h);
        kernels::BiasAct(&h, layer.b2.data(), FAct::kNone);
        // f64 Encoder applies only dropout between GIN layers (inference
        // no-op); the single relu comes after the stack.
      }
      kernels::BiasAct(&h, nullptr, FAct::kRelu);
      break;
    case GnnBackbone::kGat: {
      const size_t n = graph.num_nodes();
      const size_t num_edges = edge_index.src.size();
      std::vector<float> logits(num_edges);
      std::vector<float> alpha;
      for (size_t l = 0; l < num_layers; ++l) {
        const Layer& layer = layers_[l];
        FMatrix out;
        for (size_t head = 0; head < layer.head_proj.size(); ++head) {
          kernels::Matmul(h, layer.head_proj[head], &scratch);  // n x head_dim
          kernels::Matmul(scratch, layer.attn_src[head], &scratch2);  // n x 1
          kernels::Matmul(scratch, layer.attn_dst[head], &scratch3);  // n x 1
          for (size_t e = 0; e < num_edges; ++e) {
            const float s = scratch2(edge_index.src[e], 0) +
                            scratch3(edge_index.dst[e], 0);
            logits[e] =
                kernels::detail::ApplyBiasAct(s, 0.0f, FAct::kLeakyRelu, 0.2f);
          }
          kernels::SegmentSoftmax(logits, edge_index.dst, n, &alpha);
          FMatrix agg;
          kernels::WeightedSpmm(alpha, edge_index.slot, &gat_pattern, scratch,
                                &agg);
          out = head == 0 ? std::move(agg) : ConcatCols(out, agg);
        }
        h = std::move(out);
        if (l + 1 < num_layers) kernels::BiasAct(&h, nullptr, FAct::kRelu);
      }
      kernels::BiasAct(&h, nullptr, FAct::kRelu);
      break;
    }
    case GnnBackbone::kAppnp: {
      const Layer& layer = layers_[0];
      kernels::Matmul(h, layer.w, &scratch);
      kernels::BiasAct(&scratch, layer.b.data(), FAct::kRelu);
      FMatrix h0;
      kernels::Matmul(scratch, layer.w2, &h0);
      kernels::BiasAct(&h0, layer.b2.data(), FAct::kRelu);
      const float alpha = static_cast<float>(o.appnp_alpha);
      h = h0;
      for (size_t step = 0; step < o.appnp_steps; ++step) {
        kernels::Spmm(adj, h, &scratch);
        kernels::ScaleAdd(scratch, 1.0f - alpha, h0, alpha, &h);
      }
      // No final relu: AppnpPropagate output feeds the head directly.
      break;
    }
    default:
      return Status::Internal("f32 scorer: unreachable backbone");
  }

  FMatrix logits;
  kernels::Matmul(h, head_w_, &logits);
  kernels::BiasAct(&logits, head_b_.data(), FAct::kNone);
  return logits;
}

}  // namespace gnn4tdl
