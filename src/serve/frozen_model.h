#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "data/tabular.h"
#include "kernels/fmatrix.h"
#include "kernels/kernels.h"
#include "models/knn_gnn.h"
#include "serve/attacher.h"
#include "serve/f32_scorer.h"
#include "serve/knn_index.h"
#include "serve/sharded_index.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// Options for loading a frozen artifact.
struct FrozenModelOptions {
  /// Tuning for the serving-side kNN index the attacher queries. Defaults to
  /// the exact brute-force index, which reproduces the training-side neighbor
  /// search bit for bit.
  KnnIndexOptions index;
  /// Overrides the artifact's recorded serving precision (lets one artifact
  /// be loaded both ways, e.g. for benchmarking). Unset = honor the artifact.
  std::optional<kernels::Precision> precision;
  /// > 1 splits the exact attachment scan into this many row-range shards
  /// (ShardedKnnIndex) — results stay bit-exact for any shard count.
  size_t index_shards = 0;
  /// > 0 fronts the attachment index with a read-through NeighborCache of
  /// this many entries; repeat rows skip the index scan entirely. The cached
  /// path is bit-exact vs the uncached one.
  size_t neighbor_cache_capacity = 0;
};

/// A trained InstanceGraphGnn packaged for online inductive inference: one
/// versioned artifact file bundling the trained parameters, the construction
/// options, the training-graph snapshot, the fitted feature transforms, and
/// the featurized training matrix. Load() reconstructs everything in a fresh
/// process — no training data or Fit() call required — and wires up an
/// InductiveAttacher so incoming rows can be scored against the frozen
/// instance graph.
///
/// For GCN/SAGE-family backbones the served scores are bit-identical to
/// InstanceGraphGnn::PredictInductive on the original model: the attacher
/// extracts the exact receptive field of the new rows and overrides node
/// degrees with their full-extended-graph values, so the k-hop subgraph
/// forward pass computes the same floating-point sums as the full graph.
class FrozenModel {
 public:
  FrozenModel(FrozenModel&&) = default;
  FrozenModel& operator=(FrozenModel&&) = default;

  /// Writes a fitted model as a frozen artifact. Identity node-init models
  /// are rejected (they are transductive-only, mirroring PredictInductive).
  /// `precision` records how the artifact should be served (parameters are
  /// always stored in full precision; kF32 means "cast down at load").
  [[nodiscard]] static Status Save(
      const InstanceGraphGnn& model, std::ostream& out,
      kernels::Precision precision = kernels::Precision::kF64);
  [[nodiscard]] static Status Save(
      const InstanceGraphGnn& model, const std::string& path,
      kernels::Precision precision = kernels::Precision::kF64);

  /// Reconstructs a frozen artifact written by Save().
  [[nodiscard]] static StatusOr<FrozenModel> Load(std::istream& in,
                                                  FrozenModelOptions options = {});
  [[nodiscard]] static StatusOr<FrozenModel> Load(const std::string& path,
                                                  FrozenModelOptions options = {});

  /// Featurizes raw rows with the frozen transform (schema must match the
  /// training table).
  [[nodiscard]] StatusOr<Matrix> Featurize(const TabularDataset& rows) const;

  /// Scores already-featurized rows (n_new x feature_dim()): attach to the
  /// frozen graph, forward the trained weights over the extracted subgraph,
  /// return n_new x num_outputs() logits. The whole batch shares one
  /// extended graph (PredictInductive micro-batch semantics).
  [[nodiscard]] StatusOr<Matrix> ScoreFeatures(const Matrix& x_new) const;

  /// Featurize + ScoreFeatures.
  [[nodiscard]] StatusOr<Matrix> Score(const TabularDataset& rows) const;

  TaskType task() const;
  size_t num_outputs() const;
  size_t feature_dim() const;
  size_t num_train_rows() const;
  const InstanceGraphGnn& model() const { return *model_; }
  const KnnIndex& index() const { return *index_; }
  const InductiveAttacher& attacher() const { return *attacher_; }

  /// The sharded/cached view the attacher queries, or null when Load ran
  /// with neither index_shards nor neighbor_cache_capacity set.
  const ShardedKnnIndex* sharded_index() const { return sharded_.get(); }

  /// The precision ScoreFeatures actually runs at. May be kF64 even when the
  /// artifact (or the load-time override) asked for kF32: backbones the f32
  /// tier does not mirror (GGNN, transformer, PairNorm configs) fall back to
  /// the double path. The downgrade is never silent — Load logs it (once per
  /// process) and, when metrics are on, exports serve.effective_precision.
  kernels::Precision precision() const { return precision_; }
  /// The precision recorded in the artifact (v1 artifacts: kF64).
  kernels::Precision artifact_precision() const { return artifact_precision_; }
  /// The precision Load was asked for: the override if given, else the
  /// artifact's record. Compare with precision() to detect a fallback.
  kernels::Precision requested_precision() const {
    return requested_precision_;
  }

 private:
  FrozenModel() = default;

  std::unique_ptr<InstanceGraphGnn> model_;
  std::unique_ptr<KnnIndex> index_;
  std::unique_ptr<ShardedKnnIndex> sharded_;
  std::unique_ptr<InductiveAttacher> attacher_;
  kernels::Precision artifact_precision_ = kernels::Precision::kF64;
  kernels::Precision requested_precision_ = kernels::Precision::kF64;
  kernels::Precision precision_ = kernels::Precision::kF64;
  /// f32 serving state, populated only when precision_ == kF32: the casted
  /// scorer and the pre-cast featurized training matrix batches gather from.
  std::unique_ptr<F32Scorer> f32_scorer_;
  kernels::FMatrix x_train_f32_;
};

}  // namespace gnn4tdl
