#pragma once

#include <future>
#include <memory>
#include <vector>

#include "common/status.h"
#include "obs/clock.h"
#include "serve/frozen_model.h"
#include "serve/registry.h"
#include "serve/tenant_engine.h"

namespace gnn4tdl {

/// Options for ServingEngine.
struct ServingOptions {
  /// A batch closes as soon as it holds this many rows...
  size_t max_batch = 16;
  /// ...or when the oldest queued row has waited this long.
  double deadline_ms = 2.0;
  /// Submissions beyond this many queued rows are rejected with
  /// kResourceExhausted instead of growing the queue without bound.
  size_t queue_capacity = 4096;
  /// Time source for latency stamping and deadline waits; null means
  /// obs::RealClock(). Tests inject an obs::FakeClock for deterministic
  /// latency assertions.
  const obs::Clock* clock = nullptr;
  /// Tenant SLO used for flight-recorder tail sampling (total latency above
  /// this retains the request's span subtree).
  double slo_ms = 50.0;
  /// Flight-recorder policy, passed through to the tenant engine.
  obs::FlightRecorderOptions recorder;
};

/// Micro-batching scoring front-end over one FrozenModel — the single-tenant
/// convenience wrapper around MultiTenantEngine: the model is registered as
/// the sole tenant ("default") and every Submit lands on its queue, so this
/// class exercises exactly the same batching worker, admission control, and
/// accounting as a multi-tenant deployment. See tenant_engine.h for the
/// batching/threading/observability contract, and ModelRegistry +
/// MultiTenantEngine for hosting several models per process.
class ServingEngine {
 public:
  /// The tenant name the wrapped model is registered under.
  static constexpr const char* kDefaultTenant = "default";

  explicit ServingEngine(const FrozenModel* model, ServingOptions options = {});

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues one featurized row (length feature_dim()). The future resolves
  /// to the row's logits (length num_outputs()); scoring errors surface
  /// through the future. Queue-capacity rejections return typed
  /// kResourceExhausted backpressure (see MultiTenantEngine::Submit for the
  /// full code contract) instead of poisoning the future.
  [[nodiscard]] StatusOr<std::future<std::vector<double>>> Submit(
      std::vector<double> features);

  /// Submit with request-scoped tracing — see MultiTenantEngine::SubmitTraced.
  [[nodiscard]] StatusOr<SubmitResult> SubmitTraced(
      std::vector<double> features, uint64_t trace_id = 0);

  /// Drains the queue and joins the worker. Idempotent; the destructor calls
  /// it.
  void Stop();

  ServeStats Stats() const;

  /// The wrapped engine's flight recorder (request digests + retained
  /// SLO-breach traces).
  const obs::FlightRecorder& recorder() const { return engine_->recorder(); }

 private:
  ModelRegistry registry_;
  /// unique_ptr: the engine snapshots the registry at construction, so the
  /// registry member must be fully populated first.
  std::unique_ptr<MultiTenantEngine> engine_;
};

}  // namespace gnn4tdl
