#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/frozen_model.h"

namespace gnn4tdl {

/// Options for ServingEngine.
struct ServingOptions {
  /// A batch closes as soon as it holds this many rows...
  size_t max_batch = 16;
  /// ...or when the oldest queued row has waited this long.
  double deadline_ms = 2.0;
  /// Submissions beyond this many queued rows fail fast instead of growing
  /// the queue without bound.
  size_t queue_capacity = 4096;
  /// Time source for latency stamping and deadline waits; null means
  /// obs::RealClock(). Tests inject an obs::FakeClock for deterministic
  /// latency assertions.
  const obs::Clock* clock = nullptr;
};

/// Aggregate serving counters. Latencies are end-to-end per request
/// (submission to completed scoring).
///
/// Precision contract: the engine keeps latency and batch-size distributions
/// in fixed-size log-bucket histograms (obs::Histogram), not per-request
/// history, so memory stays O(1) for any number of requests. The p50/p95/p99
/// fields are therefore histogram estimates with bounded relative error —
/// at the default bucket growth of 2^(1/8), within ~4.4% of an exact sorted
/// percentile. `max_ms`, `requests`, `batches`, `mean_batch_rows`, and
/// `throughput_rps` are exact.
struct ServeStats {
  size_t requests = 0;
  size_t batches = 0;
  size_t rejected = 0;
  double mean_batch_rows = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Completed requests divided by the span between the first submission and
  /// the last completion.
  double throughput_rps = 0.0;
  size_t max_queue_depth = 0;

  std::string ToString() const;
};

/// Micro-batching scoring front-end over a FrozenModel: requests queue up,
/// a worker thread drains them in batches of up to `max_batch` rows (or
/// whatever arrived within `deadline_ms` of the oldest request), and each
/// batch is attached and scored in one subgraph forward pass — amortizing
/// the per-request graph extraction that dominates single-row latency.
///
/// Rows in one batch share the extended graph (PredictInductive semantics):
/// a training node anchoring several queued rows aggregates all of them.
/// With max_batch = 1 the engine scores exactly like
/// FrozenModel::ScoreFeatures on each row.
///
/// Threading: the engine owns exactly one batching worker; intra-op
/// parallelism inside each batch forward (SpMM, matmul, edge softmax) comes
/// from the shared ThreadPool::Global(), sized by GNN4TDL_THREADS. The
/// constructor pre-warms that pool so the first batch does not pay thread
/// spin-up. The worker thread is the only caller of the tensor kernels here,
/// so batches never contend with each other for the pool, and scoring results
/// are deterministic for a fixed thread count (see common/parallel.h).
///
/// Observability: every batch forward runs under a "serve/batch" trace span
/// (items = rows in the batch) when tracing is on, and when
/// obs::MetricsEnabled() the engine mirrors its accounting into
/// MetricsRegistry::Global() as serve.requests_total, serve.rejected_total,
/// serve.queue_depth, serve.latency_ms, and serve.batch_rows.
///
/// Precision: the engine scores through FrozenModel::ScoreFeatures, so it
/// inherits the model's serving tier — double, or the f32 SIMD kernel tier
/// when the artifact (or FrozenModelOptions::precision) selects it. The
/// engine itself is precision-agnostic; requests and responses stay double
/// at the API boundary either way.
class ServingEngine {
 public:
  explicit ServingEngine(const FrozenModel* model, ServingOptions options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues one featurized row (length feature_dim()). The future resolves
  /// to the row's logits (length num_outputs()); scoring errors and
  /// queue-capacity rejections surface as std::runtime_error.
  std::future<std::vector<double>> Submit(std::vector<double> features);

  /// Drains the queue and joins the worker. Idempotent; the destructor calls
  /// it.
  void Stop();

  ServeStats Stats() const;

 private:
  struct Request {
    std::vector<double> features;
    std::promise<std::vector<double>> promise;
    int64_t enqueued_ns = 0;
  };

  void WorkerLoop();

  const FrozenModel* model_;
  ServingOptions options_;
  const obs::Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  // Accounting (guarded by mu_ except the histograms, which shard
  // internally). Bounded: distributions live in fixed-size histograms, never
  // per-request vectors.
  obs::Histogram latency_ms_hist_;
  obs::Histogram batch_rows_hist_;
  size_t requests_done_ = 0;
  size_t batches_ = 0;
  size_t total_batch_rows_ = 0;
  size_t rejected_ = 0;
  size_t max_queue_depth_ = 0;
  bool any_request_ = false;
  int64_t first_submit_ns_ = 0;
  int64_t last_complete_ns_ = 0;

  std::thread worker_;
};

}  // namespace gnn4tdl
