#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "serve/knn_index.h"
#include "serve/neighbor_cache.h"

namespace gnn4tdl {

/// Options for ShardedKnnIndex.
struct ShardedKnnIndexOptions {
  /// Row-range shards the exact scan is split into. <= 1 behaves like the
  /// base index (still with the deterministic merge path).
  size_t num_shards = 4;
  /// Entries in the read-through neighbor cache. 0 = no cache.
  size_t cache_capacity = 0;
  size_t cache_stripes = 8;
};

/// Sharded view over an exact KnnIndex plus an optional read-through
/// NeighborCache — the serving-side answer to the one-big-index-scan
/// bottleneck: the reference rows are partitioned into contiguous row-range
/// shards, each query scans the shards independently (per-shard top-k kept
/// under the shared BetterHit ordering) and merges the per-shard winners, and
/// repeated queries short-circuit through the cache without touching any
/// shard.
///
/// Exactness contract: per-row similarities come from
/// KnnIndex::SimilarityTo — the same arithmetic, on the same rows, in the
/// same per-row operation order as the base index — and BetterHit is a strict
/// weak order with a deterministic tie-break, so for any shard count the
/// merged top-k equals the base index's exact Query bit for bit, and the
/// cached path (which replays a stored answer) is bit-exact against the
/// uncached one. Asserted by tests/serve_tenant_test.cc.
///
/// Cluster-pruned base indices are not sharded (their probe sets are not
/// row-range decomposable); queries delegate to the base, with the cache
/// still in front.
///
/// The base index must outlive this view (FrozenModel owns both).
class ShardedKnnIndex : public NeighborSource {
 public:
  ShardedKnnIndex(const KnnIndex* base, ShardedKnnIndexOptions options = {});

  std::vector<KnnHit> Query(const double* query, size_t k) const;
  std::vector<std::vector<KnnHit>> QueryBatch(const Matrix& x,
                                              size_t k) const override;

  size_t num_shards() const { return ranges_.size(); }
  /// Null when the cache is disabled.
  const NeighborCache* cache() const { return cache_.get(); }

 private:
  std::vector<KnnHit> ScanShards(const double* query, size_t k) const;

  const KnnIndex* base_;
  std::vector<std::pair<size_t, size_t>> ranges_;  // [lo, hi) row ranges
  std::unique_ptr<NeighborCache> cache_;
};

}  // namespace gnn4tdl
