#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "construct/similarity.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// Options for KnnIndex.
struct KnnIndexOptions {
  /// 0 = exact brute-force scan (results identical to ranking every
  /// reference row by construct/similarity RowSimilarity). > 0 partitions the
  /// reference rows into this many clusters at build time and scans only the
  /// `num_probes` clusters whose centroids are most similar to the query —
  /// approximate, but cuts the per-query gather that dominates serving cost.
  size_t num_clusters = 0;
  size_t num_probes = 2;
  /// Lloyd refinement sweeps for the cluster assignment.
  size_t kmeans_iters = 4;
  uint64_t seed = 1;
};

/// A neighbor hit: reference row index and its similarity to the query.
struct KnnHit {
  size_t index;
  double similarity;
};

/// Ordering shared by every attachment-index implementation: similarity
/// descending, reference index ascending on exact ties. The tie-break makes
/// top-k selection deterministic and shard-count-invariant (merging
/// per-shard top-k lists under this comparator yields exactly the global
/// top-k).
inline bool BetterHit(const KnnHit& a, const KnnHit& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.index < b.index;
}

/// Anything the serving attacher can pull neighbor hits from: the exact
/// KnnIndex, a ShardedKnnIndex, or a cache-fronted composite. Implementations
/// must be safe for concurrent const queries.
class NeighborSource {
 public:
  virtual ~NeighborSource() = default;
  /// Queries every row of `x` (n x dim); out[i] = best-first hits for row i.
  virtual std::vector<std::vector<KnnHit>> QueryBatch(const Matrix& x,
                                                      size_t k) const = 0;
};

/// Read-only k-nearest-neighbor index over the rows of a frozen reference
/// matrix (the featurized training table of a FrozenModel). Built once at
/// load time, queried per request by serve/InductiveAttacher.
///
/// The exact mode computes similarities with the same arithmetic as
/// RowSimilarity, so the selected neighbor *set* matches what
/// InstanceGraphGnn::PredictInductive finds (ties broken deterministically by
/// BetterHit: lower reference index wins).
class KnnIndex : public NeighborSource {
 public:
  [[nodiscard]] static StatusOr<KnnIndex> Build(Matrix reference,
                                                SimilarityMetric metric,
                                                double gamma = 1.0,
                                                KnnIndexOptions options = {});

  /// The k reference rows most similar to `query` (length dim()), best
  /// first.
  std::vector<KnnHit> Query(const double* query, size_t k) const;

  /// Queries every row of `x` (n x dim()); out[i] = hits for row i.
  std::vector<std::vector<KnnHit>> QueryBatch(const Matrix& x,
                                              size_t k) const override;

  /// Similarity of `query` (length dim()) to reference row `row` — the exact
  /// arithmetic Query ranks by, exposed so a sharded scan over row ranges
  /// produces bit-identical scores.
  double SimilarityTo(const double* query, size_t row) const {
    return Similarity(query, row);
  }

  size_t num_rows() const { return reference_.rows(); }
  size_t dim() const { return reference_.cols(); }
  bool exact() const { return centroids_.empty(); }
  const Matrix& reference() const { return reference_; }

 private:
  KnnIndex(Matrix reference, SimilarityMetric metric, double gamma)
      : reference_(std::move(reference)), metric_(metric), gamma_(gamma) {}

  double Similarity(const double* query, size_t row) const;
  void ScanInto(const double* query, const std::vector<size_t>& rows,
                std::vector<KnnHit>& hits) const;

  Matrix reference_;
  SimilarityMetric metric_;
  double gamma_;

  // Cluster-pruned mode (empty when exact).
  Matrix centroids_;                         // num_clusters x dim
  std::vector<std::vector<size_t>> members_; // rows per cluster
  size_t num_probes_ = 2;
};

}  // namespace gnn4tdl
