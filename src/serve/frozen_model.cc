#include "serve/frozen_model.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "obs/warn.h"

namespace gnn4tdl {

namespace {

// v2 added the `precision` field (serving tier). v1 artifacts are still
// accepted and serve as double.
constexpr char kFrozenMagicV1[] = "gnn4tdl-frozen-model-v1";
constexpr char kFrozenMagic[] = "gnn4tdl-frozen-model-v2";

/// Number of message-passing steps the backbone runs — the receptive-field
/// radius the attacher must cover.
size_t EffectiveHops(const InstanceGraphGnnOptions& o) {
  if (o.backbone == GnnBackbone::kAppnp) {
    return std::max<size_t>(o.appnp_steps, 1);
  }
  return std::max<size_t>(o.num_layers, 1);
}

/// True when per-node outputs depend on nodes outside any k-hop ball (global
/// attention, or PairNorm's batch statistics): the attacher must then keep
/// the whole training graph to stay faithful to PredictInductive.
bool NeedsFullNeighborhood(const InstanceGraphGnnOptions& o) {
  return o.backbone == GnnBackbone::kTransformer || o.use_pair_norm;
}

Status ExpectField(std::istream& in, const std::string& want) {
  std::string got;
  if (!(in >> got)) {
    return Status::IoError("frozen model: truncated before field '" + want +
                           "'");
  }
  if (got != want) {
    return Status::IoError("frozen model: expected field '" + want +
                           "', got '" + got + "'");
  }
  return Status::OK();
}

template <typename T>
Status ReadField(std::istream& in, const std::string& name, T& out) {
  GNN4TDL_RETURN_IF_ERROR(ExpectField(in, name));
  if (!(in >> out)) {
    return Status::IoError("frozen model: unreadable value for field '" +
                           name + "'");
  }
  return Status::OK();
}

}  // namespace

Status FrozenModel::Save(const InstanceGraphGnn& model, std::ostream& out,
                         kernels::Precision precision) {
  if (!model.fitted()) {
    return Status::FailedPrecondition("FrozenModel::Save before Fit");
  }
  if (model.options().node_init == NodeInit::kIdentity) {
    return Status::FailedPrecondition(
        "identity node init is transductive-only and cannot be frozen for "
        "inductive serving");
  }
  if (!out) return Status::IoError("frozen model stream is not writable");

  const InstanceGraphGnnOptions& o = model.options();

  // Freeze-time twin of the Load-side fallback warning: if the artifact is
  // being stamped f32 but the backbone has no f32 tier, every future load
  // will quietly serve f64. Say so now, while the operator who chose the
  // precision is still watching, and export the precision the artifact will
  // actually serve (docs/SERVING.md "f32 support matrix").
  const bool f32_unservable = precision == kernels::Precision::kF32 &&
                              !F32Scorer::Supports(o);
  if (f32_unservable) {
    obs::WarnOnce("freeze-f32-unservable",
                  std::string("freezing with precision f32 but backbone ") +
                      GnnBackboneName(o.backbone) +
                      (o.use_pair_norm ? "+pairnorm" : "") +
                      " has no f32 tier; this artifact will serve f64");
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.freeze_effective_precision")
        .Set(precision == kernels::Precision::kF32 && !f32_unservable ? 32.0
                                                                      : 64.0);
  }

  std::streamsize old_precision = out.precision(17);
  out << kFrozenMagic << '\n';
  out << "task " << static_cast<int>(model.task()) << '\n';
  out << "num_outputs " << model.output_dim() << '\n';
  out << "precision " << kernels::PrecisionName(precision) << '\n';
  out << "backbone " << GnnBackboneName(o.backbone) << '\n';
  out << "hidden_dim " << o.hidden_dim << '\n';
  out << "num_layers " << o.num_layers << '\n';
  out << "gat_heads " << o.gat_heads << '\n';
  out << "appnp_steps " << o.appnp_steps << '\n';
  out << "appnp_alpha " << o.appnp_alpha << '\n';
  out << "use_pair_norm " << (o.use_pair_norm ? 1 : 0) << '\n';
  out << "use_jumping_knowledge " << (o.use_jumping_knowledge ? 1 : 0) << '\n';
  out << "knn_k " << o.knn.k << '\n';
  out << "knn_metric " << SimilarityMetricName(o.knn.metric) << '\n';
  out << "knn_gamma " << o.knn.gamma << '\n';
  out << "seed " << o.seed << '\n';
  out.precision(old_precision);

  GNN4TDL_RETURN_IF_ERROR(model.featurizer().Save(out));
  GNN4TDL_RETURN_IF_ERROR(
      WriteEdgeList(model.graph(), out, /*with_edge_count=*/true));

  const Matrix& x = model.feature_cache();
  old_precision = out.precision(17);
  out << "features " << x.rows() << ' ' << x.cols() << '\n';
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.row_data(i);
    for (size_t j = 0; j < x.cols(); ++j) {
      out << row[j] << (j + 1 < x.cols() ? ' ' : '\n');
    }
  }
  out.precision(old_precision);

  GNN4TDL_RETURN_IF_ERROR(model.SaveTrainedParameters(out));
  if (!out) return Status::IoError("write failure on frozen model stream");
  return Status::OK();
}

Status FrozenModel::Save(const InstanceGraphGnn& model, const std::string& path,
                         kernels::Precision precision) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  GNN4TDL_RETURN_IF_ERROR(Save(model, out, precision));
  if (!out) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

StatusOr<FrozenModel> FrozenModel::Load(std::istream& in,
                                        FrozenModelOptions options) {
  std::string magic;
  if (!(in >> magic) || (magic != kFrozenMagic && magic != kFrozenMagicV1)) {
    return Status::InvalidArgument(
        "stream is not a gnn4tdl frozen model (bad magic)");
  }
  const bool v1 = magic == kFrozenMagicV1;

  int task_int = 0;
  size_t num_outputs = 0;
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "task", task_int));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "num_outputs", num_outputs));

  kernels::Precision artifact_precision = kernels::Precision::kF64;
  if (!v1) {
    std::string precision_name;
    GNN4TDL_RETURN_IF_ERROR(ReadField(in, "precision", precision_name));
    StatusOr<kernels::Precision> parsed =
        kernels::PrecisionFromName(precision_name);
    // IoError, not the parser's InvalidArgument: a bad precision value is a
    // corrupt artifact, not a "this isn't a frozen model at all" condition
    // (the path-based Load overload folds InvalidArgument into the latter).
    if (!parsed.ok()) {
      return Status::IoError("frozen model: " + parsed.status().message());
    }
    artifact_precision = *parsed;
  }

  InstanceGraphGnnOptions o;
  std::string backbone_name, metric_name;
  int pair_norm = 0, jk = 0;
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "backbone", backbone_name));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "hidden_dim", o.hidden_dim));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "num_layers", o.num_layers));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "gat_heads", o.gat_heads));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "appnp_steps", o.appnp_steps));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "appnp_alpha", o.appnp_alpha));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "use_pair_norm", pair_norm));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "use_jumping_knowledge", jk));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "knn_k", o.knn.k));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "knn_metric", metric_name));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "knn_gamma", o.knn.gamma));
  GNN4TDL_RETURN_IF_ERROR(ReadField(in, "seed", o.seed));

  StatusOr<GnnBackbone> backbone = GnnBackboneFromName(backbone_name);
  if (!backbone.ok()) return backbone.status();
  o.backbone = *backbone;
  StatusOr<SimilarityMetric> metric = SimilarityMetricFromName(metric_name);
  if (!metric.ok()) return metric.status();
  o.knn.metric = *metric;
  o.use_pair_norm = pair_norm != 0;
  o.use_jumping_knowledge = jk != 0;
  o.node_init = NodeInit::kFeatures;
  // The graph ships with the artifact; construction never reruns at serve
  // time.
  o.graph_source = GraphSource::kPrecomputed;

  const TaskType task = static_cast<TaskType>(task_int);
  if (task != TaskType::kBinaryClassification &&
      task != TaskType::kMultiClassification &&
      task != TaskType::kRegression && task != TaskType::kAnomalyDetection) {
    return Status::IoError("frozen model: unknown task code " +
                           std::to_string(task_int));
  }

  StatusOr<Featurizer> featurizer = Featurizer::Load(in);
  if (!featurizer.ok()) return featurizer.status();

  in >> std::ws;  // ReadEdgeList is line-oriented; start it on the magic line
  StatusOr<Graph> graph = ReadEdgeList(in);
  if (!graph.ok()) return graph.status();

  size_t n = 0, d = 0;
  GNN4TDL_RETURN_IF_ERROR(ExpectField(in, "features"));
  if (!(in >> n >> d)) {
    return Status::IoError("frozen model: unreadable feature matrix header");
  }
  Matrix x_cache(n, d);
  for (size_t i = 0; i < n; ++i) {
    double* row = x_cache.row_data(i);
    for (size_t j = 0; j < d; ++j) {
      if (!(in >> row[j])) {
        return Status::IoError("frozen model: truncated feature matrix at row " +
                               std::to_string(i));
      }
    }
  }

  FrozenModel frozen;
  frozen.model_ = std::make_unique<InstanceGraphGnn>(o);
  GNN4TDL_RETURN_IF_ERROR(frozen.model_->RestoreForInference(
      task, num_outputs, std::move(*featurizer), std::move(*graph),
      std::move(x_cache)));
  GNN4TDL_RETURN_IF_ERROR(frozen.model_->LoadTrainedParameters(in));

  StatusOr<KnnIndex> index =
      KnnIndex::Build(frozen.model_->feature_cache(), o.knn.metric,
                      o.knn.gamma, options.index);
  if (!index.ok()) return index.status();
  frozen.index_ = std::make_unique<KnnIndex>(std::move(*index));

  // Optional serving-side views over the exact index: row-range sharding
  // and/or a read-through neighbor cache. Both are bit-exact vs the plain
  // index, so they can be toggled per deployment without revalidation.
  const NeighborSource* attach_source = frozen.index_.get();
  if (options.index_shards > 1 || options.neighbor_cache_capacity > 0) {
    ShardedKnnIndexOptions shard_opts;
    shard_opts.num_shards = std::max<size_t>(options.index_shards, 1);
    shard_opts.cache_capacity = options.neighbor_cache_capacity;
    frozen.sharded_ =
        std::make_unique<ShardedKnnIndex>(frozen.index_.get(), shard_opts);
    attach_source = frozen.sharded_.get();
  }

  InductiveAttacherOptions attach;
  attach.k = std::max<size_t>(o.knn.k, 1);
  attach.hops = EffectiveHops(o);
  attach.full_neighborhood = NeedsFullNeighborhood(o);
  frozen.attacher_ = std::make_unique<InductiveAttacher>(
      &frozen.model_->graph(), &frozen.model_->feature_cache(), attach_source,
      attach);

  // Precision selection: load-time override beats the artifact's record; f32
  // degrades to f64 for backbones the f32 tier does not mirror — loudly:
  // logged once per process and exported as serve.effective_precision so a
  // fleet silently serving slower/wider than requested is visible.
  frozen.artifact_precision_ = artifact_precision;
  const kernels::Precision want =
      options.precision.value_or(artifact_precision);
  frozen.requested_precision_ = want;
  if (want == kernels::Precision::kF32 && F32Scorer::Supports(o)) {
    StatusOr<F32Scorer> scorer = F32Scorer::Build(*frozen.model_);
    if (!scorer.ok()) return scorer.status();
    frozen.f32_scorer_ = std::make_unique<F32Scorer>(std::move(*scorer));
    frozen.x_train_f32_ =
        kernels::FMatrix::FromDouble(frozen.model_->feature_cache());
    frozen.precision_ = kernels::Precision::kF32;
  } else {
    frozen.precision_ = kernels::Precision::kF64;
    if (want == kernels::Precision::kF32) {
      obs::WarnOnce("serve-f32-fallback",
                    std::string("f32 serving requested but backbone ") +
                        GnnBackboneName(o.backbone) +
                        (o.use_pair_norm ? "+pairnorm" : "") +
                        " has no f32 tier; serving f64");
    }
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.effective_precision")
        .Set(frozen.precision_ == kernels::Precision::kF32 ? 32.0 : 64.0);
  }
  return frozen;
}

StatusOr<FrozenModel> FrozenModel::Load(const std::string& path,
                                        FrozenModelOptions options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  StatusOr<FrozenModel> frozen = Load(in, options);
  if (!frozen.ok() &&
      frozen.status().code() == StatusCode::kInvalidArgument) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a gnn4tdl frozen model");
  }
  return frozen;
}

StatusOr<Matrix> FrozenModel::Featurize(const TabularDataset& rows) const {
  return model_->featurizer().Transform(rows);
}

StatusOr<Matrix> FrozenModel::ScoreFeatures(const Matrix& x_new) const {
  if (precision_ == kernels::Precision::kF32) {
    // f32 path: the attacher skips the double feature gather; the batch
    // feature matrix is assembled directly in single precision from the
    // pre-cast training cache plus the cast-down new rows.
    StatusOr<AttachedBatch> batch =
        attacher_->Attach(x_new, /*with_features=*/false);
    if (!batch.ok()) return batch.status();
    const size_t n_sub = batch->train_nodes.size();
    kernels::FMatrix features(n_sub + batch->num_new, x_train_f32_.cols());
    for (size_t i = 0; i < n_sub; ++i) {
      features.SetRow(i, x_train_f32_, batch->train_nodes[i]);
    }
    for (size_t i = 0; i < batch->num_new; ++i) {
      features.SetRowFromDouble(n_sub + i, x_new.row_data(i));
    }
    StatusOr<kernels::FMatrix> logits =
        f32_scorer_->Score(features, batch->graph, batch->degrees);
    if (!logits.ok()) return logits.status();
    Matrix out(batch->num_new, logits->cols());
    for (size_t i = 0; i < batch->num_new; ++i) {
      for (size_t j = 0; j < logits->cols(); ++j) {
        out(i, j) = static_cast<double>((*logits)(n_sub + i, j));
      }
    }
    return out;
  }

  StatusOr<AttachedBatch> batch = attacher_->Attach(x_new);
  if (!batch.ok()) return batch.status();
  StatusOr<Matrix> logits =
      model_->ScoreOnGraph(batch->features, batch->graph, &batch->degrees);
  if (!logits.ok()) return logits.status();
  const size_t n_sub = batch->train_nodes.size();
  Matrix out(batch->num_new, logits->cols());
  for (size_t i = 0; i < batch->num_new; ++i) {
    std::copy(logits->row_data(n_sub + i),
              logits->row_data(n_sub + i) + logits->cols(), out.row_data(i));
  }
  return out;
}

StatusOr<Matrix> FrozenModel::Score(const TabularDataset& rows) const {
  StatusOr<Matrix> x = Featurize(rows);
  if (!x.ok()) return x.status();
  return ScoreFeatures(*x);
}

TaskType FrozenModel::task() const { return model_->task(); }
size_t FrozenModel::num_outputs() const { return model_->output_dim(); }
size_t FrozenModel::feature_dim() const {
  return model_->feature_cache().cols();
}
size_t FrozenModel::num_train_rows() const {
  return model_->feature_cache().rows();
}

}  // namespace gnn4tdl
