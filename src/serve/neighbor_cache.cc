#include "serve/neighbor_cache.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "obs/metrics.h"

namespace gnn4tdl {

NeighborCacheOptions NeighborCache::Normalize(NeighborCacheOptions options) {
  if (options.stripes == 0) options.stripes = 1;
  if (options.capacity < options.stripes) options.capacity = options.stripes;
  return options;
}

NeighborCache::NeighborCache(NeighborCacheOptions options)
    : options_(Normalize(options)),
      per_stripe_capacity_(options_.capacity / options_.stripes),
      stripes_(options_.stripes) {}

uint64_t NeighborCache::Key(const double* query, size_t dim, size_t k) {
  // FNV-1a over the raw query bytes, then the requested k. Collisions are
  // verified against the stored query before a hit is returned.
  uint64_t h = 1469598103934665603ull;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(query);
  for (size_t i = 0; i < dim * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  h ^= static_cast<uint64_t>(k);
  h *= 1099511628211ull;
  return h;
}

NeighborCache::Stripe& NeighborCache::StripeFor(uint64_t key) const {
  return stripes_[key % stripes_.size()];
}

bool NeighborCache::Lookup(const double* query, size_t dim, size_t k,
                           std::vector<KnnHit>* hits) const {
  GNN4TDL_CHECK(hits != nullptr);
  const uint64_t key = Key(query, dim, k);
  Stripe& stripe = StripeFor(key);
  bool hit = false;
  {
    MutexLock lock(&stripe.mu);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end() && it->second.k == k &&
        it->second.query.size() == dim &&
        std::memcmp(it->second.query.data(), query, dim * sizeof(double)) ==
            0) {
      *hits = it->second.hits;
      hit = true;
      ++stripe.hits;
    } else {
      ++stripe.misses;
    }
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter(hit ? "serve.cache.hits_total" : "serve.cache.misses_total")
        .Increment();
  }
  return hit;
}

void NeighborCache::Insert(const double* query, size_t dim, size_t k,
                           const std::vector<KnnHit>& hits) {
  const uint64_t key = Key(query, dim, k);
  Stripe& stripe = StripeFor(key);
  MutexLock lock(&stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    while (stripe.map.size() >= per_stripe_capacity_ && !stripe.fifo.empty()) {
      stripe.map.erase(stripe.fifo.front());
      stripe.fifo.pop_front();
      ++stripe.evictions;
    }
    stripe.fifo.push_back(key);
  }
  Entry& entry = stripe.map[key];
  entry.query.assign(query, query + dim);
  entry.k = k;
  entry.hits = hits;
}

NeighborCache::CacheStats NeighborCache::Stats() const {
  CacheStats stats;
  for (Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    stats.hits += stripe.hits;
    stats.misses += stripe.misses;
    stats.evictions += stripe.evictions;
    stats.entries += stripe.map.size();
  }
  return stats;
}

}  // namespace gnn4tdl
