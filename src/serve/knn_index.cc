#include "serve/knn_index.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace gnn4tdl {

double KnnIndex::Similarity(const double* query, size_t row) const {
  // Same arithmetic (and operation order) as construct/similarity
  // RowSimilarity with the query as row a, so serving reproduces the
  // neighbor sets training-side code computes.
  const double* rb = reference_.row_data(row);
  const size_t d = reference_.cols();
  switch (metric_) {
    case SimilarityMetric::kEuclidean: {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double diff = query[j] - rb[j];
        s += diff * diff;
      }
      return -std::sqrt(s);
    }
    case SimilarityMetric::kManhattan: {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) s += std::fabs(query[j] - rb[j]);
      return -s;
    }
    case SimilarityMetric::kCosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (size_t j = 0; j < d; ++j) {
        dot += query[j] * rb[j];
        na += query[j] * query[j];
        nb += rb[j] * rb[j];
      }
      double denom = std::sqrt(na) * std::sqrt(nb);
      return denom > 1e-12 ? dot / denom : 0.0;
    }
    case SimilarityMetric::kRbf: {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double diff = query[j] - rb[j];
        s += diff * diff;
      }
      return std::exp(-gamma_ * s);
    }
    case SimilarityMetric::kPearson: {
      double ma = 0.0, mb = 0.0;
      for (size_t j = 0; j < d; ++j) {
        ma += query[j];
        mb += rb[j];
      }
      ma /= static_cast<double>(d);
      mb /= static_cast<double>(d);
      double cov = 0.0, va = 0.0, vb = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double da = query[j] - ma;
        double db = rb[j] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
      }
      double denom = std::sqrt(va) * std::sqrt(vb);
      return denom > 1e-12 ? cov / denom : 0.0;
    }
    case SimilarityMetric::kInnerProduct: {
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) dot += query[j] * rb[j];
      return dot;
    }
  }
  return 0.0;
}

StatusOr<KnnIndex> KnnIndex::Build(Matrix reference, SimilarityMetric metric,
                                   double gamma, KnnIndexOptions options) {
  if (reference.rows() == 0 || reference.cols() == 0) {
    return Status::InvalidArgument("KnnIndex requires a non-empty reference");
  }
  KnnIndex index(std::move(reference), metric, gamma);
  const size_t n = index.reference_.rows();
  const size_t d = index.reference_.cols();

  size_t num_clusters = std::min(options.num_clusters, n);
  if (num_clusters <= 1) return index;  // exact mode

  // Lightweight k-means over the reference rows: sampled initial centers,
  // a few Lloyd sweeps, euclidean assignment (the geometry all supported
  // metrics approximately share after standardization).
  Rng rng(options.seed);
  std::vector<size_t> perm = rng.Permutation(n);
  Matrix centroids(num_clusters, d);
  for (size_t c = 0; c < num_clusters; ++c)
    std::copy(index.reference_.row_data(perm[c]),
              index.reference_.row_data(perm[c]) + d, centroids.row_data(c));

  std::vector<size_t> assignment(n, 0);
  auto sq_dist = [&](const double* a, const double* b) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      double diff = a[j] - b[j];
      s += diff * diff;
    }
    return s;
  };
  for (size_t iter = 0; iter < std::max<size_t>(options.kmeans_iters, 1);
       ++iter) {
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = sq_dist(index.reference_.row_data(i),
                              centroids.row_data(0));
      for (size_t c = 1; c < num_clusters; ++c) {
        double dist = sq_dist(index.reference_.row_data(i),
                              centroids.row_data(c));
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      assignment[i] = best;
    }
    Matrix sums(num_clusters, d);
    std::vector<size_t> counts(num_clusters, 0);
    for (size_t i = 0; i < n; ++i) {
      double* srow = sums.row_data(assignment[i]);
      const double* x = index.reference_.row_data(i);
      for (size_t j = 0; j < d; ++j) srow[j] += x[j];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < num_clusters; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      double inv = 1.0 / static_cast<double>(counts[c]);
      double* crow = centroids.row_data(c);
      const double* srow = sums.row_data(c);
      for (size_t j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }
  }

  index.centroids_ = std::move(centroids);
  index.members_.assign(num_clusters, {});
  for (size_t i = 0; i < n; ++i) index.members_[assignment[i]].push_back(i);
  index.num_probes_ = std::max<size_t>(options.num_probes, 1);
  return index;
}

void KnnIndex::ScanInto(const double* query, const std::vector<size_t>& rows,
                        std::vector<KnnHit>& hits) const {
  for (size_t row : rows) hits.push_back({row, Similarity(query, row)});
}

std::vector<KnnHit> KnnIndex::Query(const double* query, size_t k) const {
  const size_t n = reference_.rows();
  k = std::min(std::max<size_t>(k, 1), n);
  std::vector<KnnHit> hits;

  if (exact()) {
    hits.reserve(n);
    for (size_t i = 0; i < n; ++i) hits.push_back({i, Similarity(query, i)});
  } else {
    // Rank centroids by euclidean proximity, scan the top probes' members.
    const size_t num_clusters = centroids_.rows();
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(num_clusters);
    const size_t d = reference_.cols();
    for (size_t c = 0; c < num_clusters; ++c) {
      double s = 0.0;
      const double* crow = centroids_.row_data(c);
      for (size_t j = 0; j < d; ++j) {
        double diff = query[j] - crow[j];
        s += diff * diff;
      }
      ranked.push_back({s, c});
    }
    size_t probes = std::min(num_probes_, num_clusters);
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<ptrdiff_t>(probes),
                      ranked.end());
    size_t gathered = 0;
    // Widen the probe set until it can actually supply k candidates (small
    // clusters would otherwise starve the result).
    while (probes < num_clusters) {
      gathered = 0;
      for (size_t p = 0; p < probes; ++p)
        gathered += members_[ranked[p].second].size();
      if (gathered >= k) break;
      std::partial_sort(ranked.begin(),
                        ranked.begin() + static_cast<ptrdiff_t>(probes + 1),
                        ranked.end());
      ++probes;
    }
    for (size_t p = 0; p < probes; ++p)
      ScanInto(query, members_[ranked[p].second], hits);
  }

  size_t take = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<ptrdiff_t>(take),
                    hits.end(), BetterHit);
  hits.resize(take);
  return hits;
}

std::vector<std::vector<KnnHit>> KnnIndex::QueryBatch(const Matrix& x,
                                                      size_t k) const {
  GNN4TDL_CHECK_EQ(x.cols(), reference_.cols());
  std::vector<std::vector<KnnHit>> out;
  out.reserve(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out.push_back(Query(x.row_data(i), k));
  return out;
}

}  // namespace gnn4tdl
