#include "gnn/readout.h"

#include "common/check.h"
#include "nn/ops.h"

namespace gnn4tdl {

const char* ReadoutTypeName(ReadoutType t) {
  switch (t) {
    case ReadoutType::kMean:
      return "mean";
    case ReadoutType::kSum:
      return "sum";
    case ReadoutType::kMax:
      return "max";
  }
  return "unknown";
}

ReadoutType ReadoutTypeFromName(const std::string& name) {
  if (name == "mean") return ReadoutType::kMean;
  if (name == "sum") return ReadoutType::kSum;
  if (name == "max") return ReadoutType::kMax;
  GNN4TDL_CHECK_MSG(false, "unknown readout name");
  return ReadoutType::kMean;
}

Tensor Readout(const Tensor& h, ReadoutType type) {
  std::vector<size_t> seg(h.rows(), 0);
  return SegmentReadout(h, seg, 1, type);
}

Tensor SegmentReadout(const Tensor& h, const std::vector<size_t>& seg,
                      size_t num_segments, ReadoutType type) {
  switch (type) {
    case ReadoutType::kMean:
      return ops::SegmentMeanRows(h, seg, num_segments);
    case ReadoutType::kSum:
      return ops::ScatterAddRows(h, seg, num_segments);
    case ReadoutType::kMax:
      return ops::SegmentMaxRows(h, seg, num_segments);
  }
  GNN4TDL_CHECK_MSG(false, "unknown readout type");
  return h;
}

}  // namespace gnn4tdl
