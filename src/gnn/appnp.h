#pragma once

#include "nn/tensor.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// APPNP propagation (Klicpera et al.): personalized-PageRank smoothing of a
/// base prediction. H_{t+1} = (1 - alpha) Â H_t + alpha H_0, for `steps`
/// iterations. Parameter-free; the predictive model lives in H_0. Deep
/// propagation without oversmoothing — the survey's answer (via DGN et al.)
/// to high-order connectivity (Section 2.5c).
///
/// Survey mapping: Table 5, row "APPNP" — the personalized-PageRank fixed
/// point Z = α (I − (1−α) Â)^{-1} H_0 approximated by the power iteration
/// above. Each step is one SpMM plus an elementwise axpy, both on the shared
/// thread pool and bit-exact at every thread count.
Tensor AppnpPropagate(const Tensor& h0, const SparseMatrix& norm_adj,
                      size_t steps = 10, double alpha = 0.1);

}  // namespace gnn4tdl
