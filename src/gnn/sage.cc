#include "gnn/sage.h"

#include "nn/fused.h"
#include "nn/ops.h"

namespace gnn4tdl {

SageLayer::SageLayer(size_t in_dim, size_t out_dim, Rng& rng)
    : self_(in_dim, out_dim, rng), neighbor_(in_dim, out_dim, rng, /*bias=*/false) {
  RegisterSubmodule(&self_);
  RegisterSubmodule(&neighbor_);
}

Tensor SageLayer::Forward(const Tensor& h, const SparseMatrix& mean_adj) const {
  return Forward(h, mean_adj, Activation::kNone);
}

Tensor SageLayer::Forward(const Tensor& h, const SparseMatrix& mean_adj,
                          Activation act) const {
  GNN4TDL_CHECK_EQ(mean_adj.rows(), h.rows());
  Tensor nbr = ops::SpMM(mean_adj, h);
  return fused::AddAct(self_.Forward(h), neighbor_.Forward(nbr), act);
}

}  // namespace gnn4tdl
