#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "nn/module.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// Graph attention layer (Veličković et al.). Per head: project with W, score
/// each edge with LeakyReLU(a_src·Wh_i + a_dst·Wh_j), softmax over each
/// node's in-edges, aggregate. Heads are concatenated, so out_dim must be a
/// multiple of num_heads. Self-loops are added to the edge set so every node
/// attends at least to itself.
///
/// Survey mapping: Table 5, row "GAT" (Section 4.3) — attention coefficients
/// α_ij = softmax_j(LeakyReLU(aᵀ [W h_i ; W h_j])) and update
/// h_i' = σ(Σ_j α_ij W h_j). The per-destination softmax is the
/// SegmentSoftmax kernel (tensor/sparse), whose forward and backward are
/// tree-reduced on the shared pool — deterministic for a fixed thread count.
class GatLayer : public Module {
 public:
  GatLayer(size_t in_dim, size_t out_dim, size_t num_heads, Rng& rng);

  /// Precomputes the edge arrays (with self-loops) for `g`; call once per
  /// graph, then Forward() any number of times. Alongside the flat edge
  /// arrays it carries the fixed CSR sparsity (row = dst, col = src, stored
  /// in edge order within each row) and the edge -> CSR-slot map, so each
  /// Forward() only stamps attention weights into the pattern and runs the
  /// SpMM kernel — no per-call graph assembly, and the per-destination
  /// accumulation order matches the edge order exactly.
  struct EdgeIndex {
    std::vector<size_t> src;
    std::vector<size_t> dst;
    size_t num_nodes = 0;
    SparseMatrix pattern;      // values are placeholders, overwritten per call
    std::vector<size_t> slot;  // slot[e] = index into pattern values for edge e
  };
  static EdgeIndex BuildEdgeIndex(const Graph& g);

  Tensor Forward(const Tensor& h, const EdgeIndex& edges) const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return head_dim_ * num_heads_; }
  size_t num_heads() const { return num_heads_; }

 private:
  size_t in_dim_;
  size_t head_dim_;
  size_t num_heads_;
  std::vector<std::unique_ptr<Linear>> head_proj_;  // in -> head_dim, no bias
  std::vector<Tensor> attn_src_;                    // head_dim x 1
  std::vector<Tensor> attn_dst_;                    // head_dim x 1
};

}  // namespace gnn4tdl
