#include "gnn/ggnn.h"

#include "nn/ops.h"

namespace gnn4tdl {

GgnnLayer::GgnnLayer(size_t dim, Rng& rng)
    : dim_(dim),
      update_x_(dim, dim, rng),
      update_h_(dim, dim, rng, /*bias=*/false),
      reset_x_(dim, dim, rng),
      reset_h_(dim, dim, rng, /*bias=*/false),
      cand_x_(dim, dim, rng),
      cand_h_(dim, dim, rng, /*bias=*/false) {
  RegisterSubmodule(&update_x_);
  RegisterSubmodule(&update_h_);
  RegisterSubmodule(&reset_x_);
  RegisterSubmodule(&reset_h_);
  RegisterSubmodule(&cand_x_);
  RegisterSubmodule(&cand_h_);
}

Tensor GgnnLayer::Forward(const Tensor& h, const SparseMatrix& norm_adj) const {
  GNN4TDL_CHECK_EQ(h.cols(), dim_);
  Tensor m = ops::SpMM(norm_adj, h);
  Tensor z = ops::Sigmoid(ops::Add(update_x_.Forward(m), update_h_.Forward(h)));
  Tensor r = ops::Sigmoid(ops::Add(reset_x_.Forward(m), reset_h_.Forward(h)));
  Tensor cand = ops::Tanh(
      ops::Add(cand_x_.Forward(m), cand_h_.Forward(ops::CwiseMul(r, h))));
  // h' = (1 - z) ⊙ h + z ⊙ cand.
  Tensor one = Tensor::Constant(Matrix::Ones(h.rows(), h.cols()));
  return ops::Add(ops::CwiseMul(ops::Sub(one, z), h), ops::CwiseMul(z, cand));
}

}  // namespace gnn4tdl
