#include "gnn/gin.h"

#include "nn/ops.h"

namespace gnn4tdl {

GinLayer::GinLayer(size_t in_dim, size_t out_dim, size_t hidden_dim, Rng& rng)
    : mlp_({in_dim, hidden_dim, out_dim}, rng, Activation::kRelu) {
  RegisterSubmodule(&mlp_);
  eps_ = RegisterParameter(Matrix::Zeros(1, 1));
}

Tensor GinLayer::Forward(const Tensor& h, const SparseMatrix& sum_adj) const {
  GNN4TDL_CHECK_EQ(sum_adj.rows(), h.rows());
  // (1 + eps) * h: broadcast the scalar eps over all entries.
  Tensor ones_col = Tensor::Constant(Matrix::Ones(h.rows(), 1));
  Tensor eps_col = ops::MatMul(ones_col, eps_);          // n x 1 of eps
  Tensor scaled = ops::Add(h, ops::MulColBroadcast(h, eps_col));
  Tensor agg = ops::SpMM(sum_adj, h);
  return mlp_.Forward(ops::Add(scaled, agg));
}

}  // namespace gnn4tdl
