#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace gnn4tdl {

/// Permutation-invariant readout functions R({h_i}) (Section 2.3): map node
/// embeddings to a graph-level representation.
///
/// Survey mapping: Section 2.3, the readout stage of the survey's three-step
/// GNN pipeline (aggregate → update → readout); equation
/// h_G = R({h_v : v ∈ G}) with R ∈ {mean, sum, max}. Not a Table 5 row —
/// every cataloged model composes one of these. Whole-set readouts are
/// tree-reduced on the shared pool (deterministic for a fixed thread
/// count); SegmentReadout is partitioned by output row and bit-exact.
enum class ReadoutType { kMean, kSum, kMax };

const char* ReadoutTypeName(ReadoutType t);
ReadoutType ReadoutTypeFromName(const std::string& name);

/// Whole-set readout: n x d -> 1 x d.
Tensor Readout(const Tensor& h, ReadoutType type);

/// Per-segment readout: rows with seg[i] == s pool into output row s
/// (num_segments x d). Used by feature-graph models where each instance owns
/// a block of feature-node embeddings.
Tensor SegmentReadout(const Tensor& h, const std::vector<size_t>& seg,
                      size_t num_segments, ReadoutType type);

}  // namespace gnn4tdl
