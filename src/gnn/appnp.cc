#include "gnn/appnp.h"

#include "common/check.h"
#include "nn/ops.h"

namespace gnn4tdl {

Tensor AppnpPropagate(const Tensor& h0, const SparseMatrix& norm_adj,
                      size_t steps, double alpha) {
  GNN4TDL_CHECK_EQ(norm_adj.rows(), h0.rows());
  GNN4TDL_CHECK(alpha >= 0.0 && alpha <= 1.0);
  Tensor h = h0;
  Tensor teleport = ops::Scale(h0, alpha);
  for (size_t t = 0; t < steps; ++t) {
    h = ops::Add(ops::Scale(ops::SpMM(norm_adj, h), 1.0 - alpha), teleport);
  }
  return h;
}

}  // namespace gnn4tdl
