#pragma once

#include "nn/module.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// Graph isomorphism layer (Xu et al.): H' = MLP((1 + eps) H + sum_nbr(H))
/// with a learnable eps. `sum_adj` is the *unnormalized* adjacency
/// (Graph::adjacency()): GIN's expressiveness argument relies on sum
/// aggregation.
///
/// Survey mapping: Table 5, row "GIN" (Section 4.3) — the
/// Weisfeiler-Lehman-strength update h_v' = MLP((1 + ε) h_v + Σ_{u∈N(v)}
/// h_u), cited by the survey for maximal discriminative power among
/// neighborhood aggregators. Sum aggregation is one SpMM; the MLP is
/// thread-pool matmuls — bit-exact at every thread count.
class GinLayer : public Module {
 public:
  GinLayer(size_t in_dim, size_t out_dim, size_t hidden_dim, Rng& rng);

  Tensor Forward(const Tensor& h, const SparseMatrix& sum_adj) const;

  size_t in_dim() const { return mlp_.in_dim(); }
  size_t out_dim() const { return mlp_.out_dim(); }

  /// Current value of the learnable eps.
  double epsilon() const { return eps_.value()(0, 0); }

 private:
  Mlp mlp_;
  Tensor eps_;  // 1 x 1
};

}  // namespace gnn4tdl
