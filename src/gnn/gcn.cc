#include "gnn/gcn.h"

#include "nn/ops.h"

namespace gnn4tdl {

GcnLayer::GcnLayer(size_t in_dim, size_t out_dim, Rng& rng)
    : linear_(in_dim, out_dim, rng) {
  RegisterSubmodule(&linear_);
}

Tensor GcnLayer::Forward(const Tensor& h, const SparseMatrix& norm_adj) const {
  GNN4TDL_CHECK_EQ(norm_adj.rows(), h.rows());
  return ops::SpMM(norm_adj, linear_.Forward(h));
}

}  // namespace gnn4tdl
