#include "gnn/gcn.h"

#include "nn/fused.h"
#include "nn/ops.h"

namespace gnn4tdl {

GcnLayer::GcnLayer(size_t in_dim, size_t out_dim, Rng& rng)
    : linear_(in_dim, out_dim, rng) {
  RegisterSubmodule(&linear_);
}

Tensor GcnLayer::Forward(const Tensor& h, const SparseMatrix& norm_adj) const {
  return Forward(h, norm_adj, Activation::kNone);
}

Tensor GcnLayer::Forward(const Tensor& h, const SparseMatrix& norm_adj,
                         Activation act) const {
  GNN4TDL_CHECK_EQ(norm_adj.rows(), h.rows());
  // The bias rides inside the linear (pre-aggregation, per the GCN update);
  // the fused node covers SpMM + activation.
  return fused::SpmmBiasAct(norm_adj, linear_.Forward(h), Tensor(), act);
}

}  // namespace gnn4tdl
