#pragma once

#include "graph/hypergraph.h"
#include "nn/module.h"

namespace gnn4tdl {

/// HGNN hypergraph convolution (Feng et al.):
///   H' = Dv^{-1/2} H_inc De^{-1} H_inc^T Dv^{-1/2} (H W + b),
/// applied as two SpMM steps through the hyperedge space. Also exposes the
/// intermediate hyperedge embeddings, which HCL/PET-style models read out as
/// *instance* representations (each row of the table is a hyperedge).
///
/// Survey mapping: Table 5, row "HGNN" (hypergraph formulations, Section
/// 4.1.3) — the normalized incidence-based convolution above, where the
/// survey's rows-as-hyperedges view makes each table row a hyperedge over
/// its cell nodes. Both incidence SpMMs and the inner matmul run on the
/// shared thread pool, bit-exact at every thread count.
class HypergraphConvLayer : public Module {
 public:
  HypergraphConvLayer(size_t in_dim, size_t out_dim, Rng& rng);

  /// Precomputed operators from Hypergraph::NodeToEdgeOperator() /
  /// EdgeToNodeOperator().
  struct Operators {
    SparseMatrix node_to_edge;  // m x n
    SparseMatrix edge_to_node;  // n x m
  };
  static Operators BuildOperators(const Hypergraph& h);

  /// Node-to-node convolution.
  Tensor Forward(const Tensor& h, const Operators& ops) const;

  /// Hyperedge embeddings after half a convolution (m x out_dim): the
  /// per-instance representation in rows-as-hyperedges formulations.
  Tensor EdgeEmbeddings(const Tensor& h, const Operators& ops) const;

  size_t in_dim() const { return linear_.in_dim(); }
  size_t out_dim() const { return linear_.out_dim(); }

 private:
  Linear linear_;
};

}  // namespace gnn4tdl
