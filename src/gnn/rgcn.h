#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// Relational GCN (Schlichtkrull et al.): per-relation weight matrices plus a
/// self transform,
///   H' = H W_self + sum_r (D_r^{-1} A_r) H W_r.
/// The layer for heterogeneous and multi-relational formulations.
///
/// Survey mapping: Table 5, row "R-GCN" (heterogeneous/multiplex graphs,
/// Section 4.1.4) — the relation-typed update h_v' = W_0 h_v +
/// Σ_r Σ_{u∈N_r(v)} (1/c_{v,r}) W_r h_u. One SpMM + matmul pair per
/// relation on the shared thread pool; the relation sum is a fixed-order
/// serial accumulation, so the layer stays bit-exact at every thread count.
class RgcnLayer : public Module {
 public:
  RgcnLayer(size_t in_dim, size_t out_dim, size_t num_relations, Rng& rng);

  /// `relation_ops` are the per-relation row-normalized operators
  /// (HeteroGraph::RelationOperators() or one per multiplex layer).
  Tensor Forward(const Tensor& h,
                 const std::vector<SparseMatrix>& relation_ops) const;

  size_t in_dim() const { return self_.in_dim(); }
  size_t out_dim() const { return self_.out_dim(); }
  size_t num_relations() const { return relation_.size(); }

 private:
  Linear self_;
  std::vector<std::unique_ptr<Linear>> relation_;
};

}  // namespace gnn4tdl
