#include "gnn/hypergraph_conv.h"

#include "nn/ops.h"

namespace gnn4tdl {

HypergraphConvLayer::HypergraphConvLayer(size_t in_dim, size_t out_dim,
                                         Rng& rng)
    : linear_(in_dim, out_dim, rng) {
  RegisterSubmodule(&linear_);
}

HypergraphConvLayer::Operators HypergraphConvLayer::BuildOperators(
    const Hypergraph& h) {
  return {h.NodeToEdgeOperator(), h.EdgeToNodeOperator()};
}

Tensor HypergraphConvLayer::Forward(const Tensor& h,
                                    const Operators& operators) const {
  Tensor projected = linear_.Forward(h);
  Tensor on_edges = ops::SpMM(operators.node_to_edge, projected);
  return ops::SpMM(operators.edge_to_node, on_edges);
}

Tensor HypergraphConvLayer::EdgeEmbeddings(const Tensor& h,
                                           const Operators& operators) const {
  return ops::SpMM(operators.node_to_edge, linear_.Forward(h));
}

}  // namespace gnn4tdl
