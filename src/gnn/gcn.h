#pragma once

#include "nn/module.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// Graph convolution (Kipf & Welling): H' = Â (H W + b), with Â the
/// symmetrically normalized adjacency from Graph::GcnNormalized(). The
/// workhorse layer of most GNN4TDL methods.
///
/// Survey mapping: Table 5, row "GCN" (Section 4.3, basic GNN models) — the
/// spectral message-passing update H^(l+1) = σ(D̃^{-1/2} Ã D̃^{-1/2} H^(l)
/// W^(l)), the default backbone of the instance-graph methods the survey
/// catalogs. Both SpMM and the inner matmul run on the shared thread pool;
/// the layer is bit-exact at every thread count (docs/KERNELS.md).
class GcnLayer : public Module {
 public:
  GcnLayer(size_t in_dim, size_t out_dim, Rng& rng);

  /// `norm_adj` must be n x n with n = h.rows().
  Tensor Forward(const Tensor& h, const SparseMatrix& norm_adj) const;

  /// act(Â (H W + b)) with the aggregation and activation fused into one
  /// tape node (nn/fused.h) when fusion is enabled; bit-identical to
  /// Forward() followed by the activation either way.
  Tensor Forward(const Tensor& h, const SparseMatrix& norm_adj,
                 Activation act) const;

  size_t in_dim() const { return linear_.in_dim(); }
  size_t out_dim() const { return linear_.out_dim(); }

 private:
  Linear linear_;
};

}  // namespace gnn4tdl
