#pragma once

#include "nn/module.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// Gated graph layer (Li et al., GGNN): a GRU cell whose input is the
/// aggregated neighbor message. Dimension-preserving (state stays `dim`).
/// Fi-GNN uses this gate to regulate information flow on feature graphs.
///
/// Survey mapping: Table 5, row "GGNN" — the recurrent update
/// h_v' = GRU(h_v, Σ_{u∈N(v)} Â_vu h_u), which the survey's feature-graph
/// methods (Fi-GNN, Section 4.2) use for interaction modeling. The
/// aggregation is one SpMM; all six gate matmuls run on the shared pool.
class GgnnLayer : public Module {
 public:
  GgnnLayer(size_t dim, Rng& rng);

  /// One propagation step: m = Â h; h' = GRU(h, m).
  Tensor Forward(const Tensor& h, const SparseMatrix& norm_adj) const;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  Linear update_x_, update_h_;  // z gate
  Linear reset_x_, reset_h_;    // r gate
  Linear cand_x_, cand_h_;      // candidate state
};

}  // namespace gnn4tdl
