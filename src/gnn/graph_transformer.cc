#include "gnn/graph_transformer.h"

#include <cmath>

#include "nn/ops.h"

namespace gnn4tdl {

GraphTransformerLayer::GraphTransformerLayer(size_t dim, size_t attn_dim,
                                             Rng& rng)
    : dim_(dim),
      attn_dim_(attn_dim),
      query_(dim, attn_dim, rng, /*bias=*/false),
      key_(dim, attn_dim, rng, /*bias=*/false),
      value_(dim, attn_dim, rng, /*bias=*/false),
      out_(attn_dim, dim, rng),
      ffn_({dim, 2 * dim, dim}, rng, Activation::kRelu) {
  RegisterSubmodule(&query_);
  RegisterSubmodule(&key_);
  RegisterSubmodule(&value_);
  RegisterSubmodule(&out_);
  RegisterSubmodule(&ffn_);
  beta_ = RegisterParameter(Matrix::Ones(1, 1));
  ln1_gamma_ = RegisterParameter(Matrix::Ones(1, dim));
  ln1_beta_ = RegisterParameter(Matrix::Zeros(1, dim));
  ln2_gamma_ = RegisterParameter(Matrix::Ones(1, dim));
  ln2_beta_ = RegisterParameter(Matrix::Zeros(1, dim));
}

Tensor GraphTransformerLayer::Forward(const Tensor& h,
                                      const Matrix& adj_dense) const {
  GNN4TDL_CHECK_EQ(h.cols(), dim_);
  GNN4TDL_CHECK_EQ(adj_dense.rows(), h.rows());
  GNN4TDL_CHECK_EQ(adj_dense.cols(), h.rows());
  const size_t n = h.rows();

  Tensor normed = ops::LayerNormRows(h, ln1_gamma_, ln1_beta_);
  Tensor q = query_.Forward(normed);
  Tensor k = key_.Forward(normed);
  Tensor v = value_.Forward(normed);

  Tensor scores = ops::Scale(ops::MatMul(q, ops::Transpose(k)),
                             1.0 / std::sqrt(static_cast<double>(attn_dim_)));
  // Structural bias: beta broadcast to n x n, elementwise with A_hat.
  Tensor ones_col = Tensor::Constant(Matrix::Ones(n, 1));
  Tensor ones_row = Tensor::Constant(Matrix::Ones(1, n));
  Tensor beta_full = ops::MatMul(ops::MatMul(ones_col, beta_), ones_row);
  Tensor bias = ops::CwiseMul(beta_full, Tensor::Constant(adj_dense));
  Tensor attn = ops::SoftmaxRows(ops::Add(scores, bias));

  Tensor mixed = out_.Forward(ops::MatMul(attn, v));
  Tensor residual = ops::Add(h, mixed);
  Tensor ffn_in = ops::LayerNormRows(residual, ln2_gamma_, ln2_beta_);
  return ops::Add(residual, ffn_.Forward(ffn_in));
}

}  // namespace gnn4tdl
