#pragma once

#include "nn/module.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// GraphSAGE with mean aggregation (Hamilton et al.):
///   H' = H W_self + mean_nbr(H) W_nbr + b.
/// `mean_adj` is the row-normalized adjacency (Graph::RowNormalized());
/// zero-degree nodes fall back to their self term only.
///
/// Survey mapping: Table 5, row "GraphSAGE" (Section 4.3) — the sample-and-
/// aggregate update h_v' = σ(W · [h_v ; AGG({h_u : u ∈ N(v)})]) with mean
/// aggregator, realized here as two thread-pool matmuls plus one SpMM with
/// D^{-1} A. The survey highlights it as the inductive backbone (Section
/// 2.5e); the serve/ path exploits exactly that property.
class SageLayer : public Module {
 public:
  SageLayer(size_t in_dim, size_t out_dim, Rng& rng);

  Tensor Forward(const Tensor& h, const SparseMatrix& mean_adj) const;

  /// act(self + neighbor) with the combine and activation fused into one
  /// tape node (nn/fused.h) when fusion is enabled; bit-identical to
  /// Forward() followed by the activation either way.
  Tensor Forward(const Tensor& h, const SparseMatrix& mean_adj,
                 Activation act) const;

  size_t in_dim() const { return self_.in_dim(); }
  size_t out_dim() const { return self_.out_dim(); }

 private:
  Linear self_;
  Linear neighbor_;
};

}  // namespace gnn4tdl
