#pragma once

#include "nn/module.h"
#include "tensor/sparse.h"

namespace gnn4tdl {

/// GraphSAGE with mean aggregation (Hamilton et al.):
///   H' = H W_self + mean_nbr(H) W_nbr + b.
/// `mean_adj` is the row-normalized adjacency (Graph::RowNormalized());
/// zero-degree nodes fall back to their self term only.
class SageLayer : public Module {
 public:
  SageLayer(size_t in_dim, size_t out_dim, Rng& rng);

  Tensor Forward(const Tensor& h, const SparseMatrix& mean_adj) const;

  size_t in_dim() const { return self_.in_dim(); }
  size_t out_dim() const { return self_.out_dim(); }

 private:
  Linear self_;
  Linear neighbor_;
};

}  // namespace gnn4tdl
