#pragma once

#include <utility>

#include "graph/bipartite.h"
#include "nn/module.h"

namespace gnn4tdl {

/// GRAPE-style bipartite convolution (You et al., "Handling Missing Data with
/// Graph Representation Learning"). Updates both sides of the
/// instance-feature graph; the observed cell value rides along each edge as a
/// 1-d edge feature:
///   msg(u -> v)   = ReLU(Q [h_u ; e_uv])
///   h_v'          = W [h_v ; mean_u msg(u -> v)]
/// Missing cells contribute no message — the formulation's native missing-
/// value handling (Section 4.1.2).
///
/// Survey mapping: Table 5, row "GRAPE" (bipartite instance-feature graphs,
/// Section 4.1.2) — the edge-featured mean-aggregation update above, with
/// the observed cell value e_uv as the survey's edge attribute. Message
/// matmuls and the mean aggregation run on the shared thread pool.
class GrapeConv : public Module {
 public:
  GrapeConv(size_t left_dim, size_t right_dim, size_t out_dim, Rng& rng);

  /// Returns updated (left, right) embeddings, both with out_dim columns.
  /// Apply the nonlinearity outside.
  std::pair<Tensor, Tensor> Forward(const Tensor& h_left,
                                    const Tensor& h_right,
                                    const BipartiteGraph& g) const;

  size_t out_dim() const { return out_dim_; }

 private:
  size_t out_dim_;
  Linear msg_to_left_;   // [h_right ; value] -> out_dim
  Linear msg_to_right_;  // [h_left ; value] -> out_dim
  Linear update_left_;   // [h_left ; agg] -> out_dim
  Linear update_right_;  // [h_right ; agg] -> out_dim
};

}  // namespace gnn4tdl
