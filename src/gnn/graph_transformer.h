#pragma once

#include <memory>

#include "graph/graph.h"
#include "nn/module.h"

namespace gnn4tdl {

/// Structure-biased transformer layer (Section 6, "incorporating graph
/// transformers"; GPS/Structure-Aware-Transformer style, simplified): full
/// self-attention over all nodes with a learnable additive bias on the
/// adjacency,
///   attn = softmax(Q K^T / sqrt(dk) + beta * A_hat),
///   H'   = H + attn V W_o   (pre-LayerNorm residual), then H' + FFN(LN(H')).
/// Dense n x n attention: intended for the laptop-scale n this library
/// targets (the survey positions transformers as a direction, not a scaling
/// answer). When beta -> 0 the layer ignores the graph; large beta recovers
/// neighborhood-dominated attention — so the model *learns* how much
/// structure to use.
///
/// Survey mapping: Section 6 ("future directions: graph transformers"); no
/// Table 5 row — the survey catalogs transformers as an emerging direction
/// rather than an established GNN4TDL backbone. Defining equation:
/// attn = softmax(Q Kᵀ/√d_k + β Â), H' = H + attn · V W_o. The dense
/// n × n attention matmuls dominate cost and are row-partitioned on the
/// shared thread pool; SoftmaxRows is bit-exact at every thread count.
class GraphTransformerLayer : public Module {
 public:
  GraphTransformerLayer(size_t dim, size_t attn_dim, Rng& rng);

  /// `adj_dense` is the dense normalized adjacency bias (n x n), typically
  /// Graph::GcnNormalized().ToDense() computed once per graph.
  Tensor Forward(const Tensor& h, const Matrix& adj_dense) const;

  /// Current structural-bias strength.
  double StructureBias() const { return beta_.value()(0, 0); }

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  size_t attn_dim_;
  Linear query_, key_, value_, out_;
  Mlp ffn_;
  Tensor beta_;       // 1 x 1 learnable structural-bias strength
  Tensor ln1_gamma_, ln1_beta_;  // pre-attention layer norm
  Tensor ln2_gamma_, ln2_beta_;  // pre-FFN layer norm
};

}  // namespace gnn4tdl
