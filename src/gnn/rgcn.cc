#include "gnn/rgcn.h"

#include "nn/ops.h"

namespace gnn4tdl {

RgcnLayer::RgcnLayer(size_t in_dim, size_t out_dim, size_t num_relations,
                     Rng& rng)
    : self_(in_dim, out_dim, rng) {
  RegisterSubmodule(&self_);
  for (size_t r = 0; r < num_relations; ++r) {
    relation_.push_back(
        std::make_unique<Linear>(in_dim, out_dim, rng, /*bias=*/false));
    RegisterSubmodule(relation_.back().get());
  }
}

Tensor RgcnLayer::Forward(
    const Tensor& h, const std::vector<SparseMatrix>& relation_ops) const {
  GNN4TDL_CHECK_EQ(relation_ops.size(), relation_.size());
  Tensor out = self_.Forward(h);
  for (size_t r = 0; r < relation_.size(); ++r) {
    Tensor msg = relation_[r]->Forward(ops::SpMM(relation_ops[r], h));
    out = ops::Add(out, msg);
  }
  return out;
}

}  // namespace gnn4tdl
