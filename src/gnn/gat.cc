#include "gnn/gat.h"

#include "nn/ops.h"

namespace gnn4tdl {

GatLayer::GatLayer(size_t in_dim, size_t out_dim, size_t num_heads, Rng& rng)
    : in_dim_(in_dim), num_heads_(num_heads) {
  GNN4TDL_CHECK_GT(num_heads, 0u);
  GNN4TDL_CHECK_MSG(out_dim % num_heads == 0,
                    "GAT out_dim must be divisible by num_heads");
  head_dim_ = out_dim / num_heads;
  for (size_t h = 0; h < num_heads; ++h) {
    head_proj_.push_back(
        std::make_unique<Linear>(in_dim, head_dim_, rng, /*bias=*/false));
    RegisterSubmodule(head_proj_.back().get());
    attn_src_.push_back(
        RegisterParameter(Matrix::GlorotUniform(head_dim_, 1, rng)));
    attn_dst_.push_back(
        RegisterParameter(Matrix::GlorotUniform(head_dim_, 1, rng)));
  }
}

GatLayer::EdgeIndex GatLayer::BuildEdgeIndex(const Graph& g) {
  EdgeIndex idx;
  idx.num_nodes = g.num_nodes();
  for (const Edge& e : g.EdgeList()) {
    idx.src.push_back(e.src);
    idx.dst.push_back(e.dst);
  }
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    if (!g.HasEdge(v, v)) {
      idx.src.push_back(v);
      idx.dst.push_back(v);
    }
  }

  // Counting-sort the edges into CSR rows keyed by destination, stable in
  // edge order, recording each edge's value slot. Stability keeps the
  // per-destination summation order of WeightedSpMM identical to a scatter
  // over the edge list, so the refactor is bit-exact.
  const size_t n = idx.num_nodes;
  const size_t num_edges = idx.src.size();
  std::vector<size_t> row_ptr(n + 1, 0);
  for (size_t e = 0; e < num_edges; ++e) ++row_ptr[idx.dst[e] + 1];
  for (size_t v = 0; v < n; ++v) row_ptr[v + 1] += row_ptr[v];
  std::vector<size_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<size_t> col_idx(num_edges);
  idx.slot.resize(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    const size_t p = cursor[idx.dst[e]]++;
    col_idx[p] = idx.src[e];
    idx.slot[e] = p;
  }
  idx.pattern = SparseMatrix::FromCsr(n, n, std::move(row_ptr),
                                      std::move(col_idx),
                                      std::vector<double>(num_edges, 0.0));
  return idx;
}

Tensor GatLayer::Forward(const Tensor& h, const EdgeIndex& edges) const {
  GNN4TDL_CHECK_EQ(h.rows(), edges.num_nodes);
  Tensor out;
  for (size_t head = 0; head < num_heads_; ++head) {
    Tensor hw = head_proj_[head]->Forward(h);  // n x head_dim
    Tensor s_src = ops::MatMul(hw, attn_src_[head]);  // n x 1
    Tensor s_dst = ops::MatMul(hw, attn_dst_[head]);  // n x 1
    Tensor logits = ops::LeakyRelu(
        ops::Add(ops::GatherRows(s_src, edges.src),
                 ops::GatherRows(s_dst, edges.dst)));
    Tensor alpha = ops::EdgeSoftmax(logits, edges.dst, edges.num_nodes);
    Tensor agg = ops::WeightedSpMM(alpha, hw, edges.pattern, edges.slot,
                                   edges.src, edges.dst);
    out = head == 0 ? agg : ops::ConcatCols(out, agg);
  }
  return out;
}

}  // namespace gnn4tdl
