#include "gnn/bipartite_conv.h"

#include "nn/ops.h"

namespace gnn4tdl {

GrapeConv::GrapeConv(size_t left_dim, size_t right_dim, size_t out_dim,
                     Rng& rng)
    : out_dim_(out_dim),
      msg_to_left_(right_dim + 1, out_dim, rng),
      msg_to_right_(left_dim + 1, out_dim, rng),
      update_left_(left_dim + out_dim, out_dim, rng),
      update_right_(right_dim + out_dim, out_dim, rng) {
  RegisterSubmodule(&msg_to_left_);
  RegisterSubmodule(&msg_to_right_);
  RegisterSubmodule(&update_left_);
  RegisterSubmodule(&update_right_);
}

std::pair<Tensor, Tensor> GrapeConv::Forward(const Tensor& h_left,
                                             const Tensor& h_right,
                                             const BipartiteGraph& g) const {
  GNN4TDL_CHECK_EQ(h_left.rows(), g.num_left());
  GNN4TDL_CHECK_EQ(h_right.rows(), g.num_right());
  const size_t e_count = g.num_edges();

  // Edge value column (constant).
  Matrix values(e_count, 1);
  for (size_t e = 0; e < e_count; ++e) values(e, 0) = g.edge_values()[e];
  Tensor value_col = Tensor::Constant(std::move(values));

  // Messages feature -> instance, aggregated per instance.
  Tensor msg_l = ops::Relu(msg_to_left_.Forward(
      ops::ConcatCols(ops::GatherRows(h_right, g.edge_right()), value_col)));
  Tensor agg_l = ops::SegmentMeanRows(msg_l, g.edge_left(), g.num_left());
  Tensor new_left = update_left_.Forward(ops::ConcatCols(h_left, agg_l));

  // Messages instance -> feature, aggregated per feature.
  Tensor msg_r = ops::Relu(msg_to_right_.Forward(
      ops::ConcatCols(ops::GatherRows(h_left, g.edge_left()), value_col)));
  Tensor agg_r = ops::SegmentMeanRows(msg_r, g.edge_right(), g.num_right());
  Tensor new_right = update_right_.Forward(ops::ConcatCols(h_right, agg_r));

  return {new_left, new_right};
}

}  // namespace gnn4tdl
