#pragma once

#include <vector>

#include "construct/similarity.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace gnn4tdl {

// Learning-based graph construction (Section 4.2.3 / Table 4). All three
// strategies score a fixed *candidate edge set* (typically a kNN superset, as
// IDGL/SLAPS initialize from kNN) and return differentiable edge weights in
// [0, 1]; a model then aggregates messages with those weights, so the graph
// structure trains end-to-end with the task loss.

/// Candidate edges: symmetric union of each row's `k` nearest neighbors under
/// `metric` (both directions listed, no self edges).
struct CandidateEdges {
  std::vector<size_t> src;
  std::vector<size_t> dst;
};
CandidateEdges KnnCandidates(const Matrix& x, size_t k,
                             SimilarityMetric metric =
                                 SimilarityMetric::kEuclidean);

/// Fully-connected candidates (for small n or feature graphs).
CandidateEdges FullCandidates(size_t n);

/// Metric-based learner (IDGL/DGM-family): learnable per-dimension scaling
/// w >= 0; the weight of edge (i, j) is relu(cosine(w ⊙ x_i, w ⊙ x_j)).
class MetricGraphLearner : public Module {
 public:
  MetricGraphLearner(size_t dim, Rng& rng);

  /// Edge weights (E x 1) for the candidate set given node features `x`.
  Tensor EdgeWeights(const Tensor& x, const CandidateEdges& edges) const;

 private:
  Tensor log_scale_;  // dim x 1; softplus-free: scale = exp(log_scale)
};

/// Neural learner (SLAPS/TabGSL-family): MLP on [x_i, x_j, |x_i - x_j|]
/// followed by a sigmoid.
class NeuralEdgeScorer : public Module {
 public:
  NeuralEdgeScorer(size_t dim, size_t hidden, Rng& rng);

  Tensor EdgeWeights(const Tensor& x, const CandidateEdges& edges) const;

 private:
  Mlp mlp_;
};

/// Direct learner (LDS/Table2Graph-family): one free parameter per candidate
/// edge, squashed by a sigmoid. Edge weights do not depend on node features.
class DirectAdjacency : public Module {
 public:
  DirectAdjacency(size_t num_edges, Rng& rng, double init_logit = 1.0);

  Tensor EdgeWeights() const;

  size_t num_edges() const { return logits_.rows(); }

 private:
  Tensor logits_;  // E x 1
};

/// Degree-normalized weighted aggregation with learned edge weights:
///   out[v] = sum_{e: dst=v} softmax_v(log w_e) * h[src_e]
/// i.e., per-destination normalization of the learned weights, which keeps
/// the operator a convex combination regardless of how many candidates
/// survive. `h` is n x d.
Tensor WeightedAggregate(const Tensor& h, const Tensor& edge_weights,
                         const CandidateEdges& edges, size_t num_nodes);

}  // namespace gnn4tdl
