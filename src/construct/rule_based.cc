#include "construct/rule_based.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"

namespace gnn4tdl {

namespace {

/// Edge weight from a similarity value: distance-style metrics are shifted
/// into (0, 1] via exp, similarity-style metrics are clamped to >= 0.
double WeightFromSimilarity(double sim, SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kEuclidean:
    case SimilarityMetric::kManhattan:
      return std::exp(sim);  // sim is a negative distance
    default:
      return std::max(sim, 1e-6);
  }
}

}  // namespace

Graph KnnGraph(const Matrix& x, const KnnGraphOptions& options) {
  const size_t n = x.rows();
  GNN4TDL_CHECK_GT(options.k, 0u);
  const size_t k = std::min(options.k, n > 0 ? n - 1 : 0);

  // Top-k neighbor lists.
  std::vector<std::vector<size_t>> nbrs(n);
  std::vector<std::vector<double>> sims(n);
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < n; ++i) {
    scored.clear();
    scored.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      scored.push_back({RowSimilarity(x, i, j, options.metric, options.gamma),
                        j});
    }
    size_t take = std::min(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<ptrdiff_t>(take),
                      scored.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (size_t t = 0; t < take; ++t) {
      nbrs[i].push_back(scored[t].second);
      sims[i].push_back(scored[t].first);
    }
  }

  std::vector<Edge> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t t = 0; t < nbrs[i].size(); ++t) {
      size_t j = nbrs[i][t];
      if (options.mutual) {
        if (std::find(nbrs[j].begin(), nbrs[j].end(), i) == nbrs[j].end())
          continue;
        if (j < i) continue;  // mutual pairs added once, then symmetrized
      }
      double w = options.weighted
                     ? WeightFromSimilarity(sims[i][t], options.metric)
                     : 1.0;
      edges.push_back({i, j, w});
    }
  }
  // Symmetrize; duplicate-summing in FromTriplets may double weights where
  // both directions were selected, so rebuild with max-normalization: use the
  // union by inserting each undirected pair once.
  std::map<std::pair<size_t, size_t>, double> undirected;
  for (const Edge& e : edges) {
    auto key = std::minmax(e.src, e.dst);
    auto [it, inserted] = undirected.emplace(key, e.weight);
    if (!inserted) it->second = std::max(it->second, e.weight);
  }
  std::vector<Edge> unique_edges;
  unique_edges.reserve(undirected.size());
  for (const auto& [key, w] : undirected)
    unique_edges.push_back({key.first, key.second, w});
  return Graph::FromEdges(n, unique_edges, /*symmetrize=*/true);
}

Graph ThresholdGraph(const Matrix& x, const ThresholdGraphOptions& options) {
  const size_t n = x.rows();
  std::vector<Edge> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double sim = RowSimilarity(x, i, j, options.metric, options.gamma);
      if (sim >= options.threshold) {
        double w = options.weighted ? WeightFromSimilarity(sim, options.metric)
                                    : 1.0;
        edges.push_back({i, j, w});
      }
    }
  }
  return Graph::FromEdges(n, edges, /*symmetrize=*/true);
}

Graph FullyConnectedGraph(size_t num_nodes, const Matrix* x,
                          const FullyConnectedOptions& options) {
  std::vector<Edge> edges;
  edges.reserve(num_nodes * num_nodes / 2);
  for (size_t i = 0; i < num_nodes; ++i) {
    size_t j_begin = options.include_self_loops ? i : i + 1;
    for (size_t j = j_begin; j < num_nodes; ++j) {
      double w = 1.0;
      if (x != nullptr) {
        GNN4TDL_CHECK_EQ(x->rows(), num_nodes);
        w = WeightFromSimilarity(
            RowSimilarity(*x, i, j, options.metric, options.gamma),
            options.metric);
      }
      edges.push_back({i, j, w});
    }
  }
  return Graph::FromEdges(num_nodes, edges, /*symmetrize=*/true);
}

Graph SameFeatureValueGraph(const TabularDataset& data, size_t column_index,
                            size_t max_group_size, uint64_t seed) {
  const Column& col = data.column(column_index);
  GNN4TDL_CHECK_MSG(col.type == ColumnType::kCategorical,
                    "SameFeatureValueGraph requires a categorical column");
  Rng rng(seed);

  std::map<int, std::vector<size_t>> groups;
  for (size_t i = 0; i < data.NumRows(); ++i) {
    if (col.codes[i] >= 0) groups[col.codes[i]].push_back(i);
  }

  std::vector<Edge> edges;
  for (auto& [code, members] : groups) {
    (void)code;
    std::vector<size_t> group = members;
    if (max_group_size > 0 && group.size() > max_group_size) {
      rng.Shuffle(group);
      group.resize(max_group_size);
    }
    for (size_t a = 0; a < group.size(); ++a)
      for (size_t b = a + 1; b < group.size(); ++b)
        edges.push_back({group[a], group[b], 1.0});
  }
  return Graph::FromEdges(data.NumRows(), edges, /*symmetrize=*/true);
}

MultiplexGraph MultiplexFromCategoricals(const TabularDataset& data,
                                         std::vector<size_t> columns,
                                         size_t max_group_size, uint64_t seed) {
  if (columns.empty()) columns = data.ColumnsOfType(ColumnType::kCategorical);
  MultiplexGraph mg(data.NumRows());
  for (size_t c : columns) {
    mg.AddLayer(data.column(c).name,
                SameFeatureValueGraph(data, c, max_group_size, seed));
  }
  return mg;
}

Graph MissingAwareKnnGraph(const TabularDataset& data, size_t k) {
  GNN4TDL_CHECK_GT(k, 0u);
  const size_t n = data.NumRows();
  const size_t d = data.NumCols();

  // Per-column std over the observed values (numeric columns).
  std::vector<double> stddev(d, 1.0);
  for (size_t c = 0; c < d; ++c) {
    const Column& col = data.column(c);
    if (col.type != ColumnType::kNumerical) continue;
    double sum = 0.0, sum_sq = 0.0;
    size_t count = 0;
    for (double v : col.numeric) {
      if (std::isnan(v)) continue;
      sum += v;
      sum_sq += v * v;
      ++count;
    }
    if (count > 0) {
      double mean = sum / static_cast<double>(count);
      double var = sum_sq / static_cast<double>(count) - mean * mean;
      stddev[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
    }
  }

  auto distance = [&](size_t a, size_t b) {
    double sum = 0.0;
    size_t overlap = 0;
    for (size_t c = 0; c < d; ++c) {
      const Column& col = data.column(c);
      if (col.IsMissing(a) || col.IsMissing(b)) continue;
      ++overlap;
      if (col.type == ColumnType::kNumerical) {
        double diff = (col.numeric[a] - col.numeric[b]) / stddev[c];
        sum += diff * diff;
      } else {
        sum += col.codes[a] == col.codes[b] ? 0.0 : 1.0;
      }
    }
    // Rows with no overlap are maximally distant.
    if (overlap == 0) return 1e300;
    return sum / static_cast<double>(overlap);
  };

  std::vector<Edge> edges;
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < n; ++i) {
    scored.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      scored.push_back({distance(i, j), j});
    }
    size_t take = std::min(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<ptrdiff_t>(take),
                      scored.end());
    for (size_t t = 0; t < take; ++t)
      edges.push_back({i, scored[t].second, 1.0});
  }
  return Graph::FromEdges(n, edges, /*symmetrize=*/true);
}

Graph FeatureCorrelationGraph(const Matrix& x, double threshold) {
  // Work on the transpose: features become rows, then Pearson row similarity
  // is exactly feature correlation.
  Matrix xt = x.Transpose();
  const size_t d = xt.rows();
  std::vector<Edge> edges;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) {
      double corr = RowSimilarity(xt, a, b, SimilarityMetric::kPearson);
      if (std::fabs(corr) >= threshold)
        edges.push_back({a, b, std::fabs(corr)});
    }
  }
  return Graph::FromEdges(d, edges, /*symmetrize=*/true);
}

}  // namespace gnn4tdl
