#pragma once

#include <string>
#include <vector>

#include "data/tabular.h"
#include "graph/bipartite.h"
#include "graph/hetero.h"
#include "graph/hypergraph.h"

namespace gnn4tdl {

// Intrinsic-structure graph construction (Section 4.2.1): graphs read
// directly off the table's rows, columns, and cells.

/// Options for BipartiteFromTable.
struct BipartiteOptions {
  /// Standardize numerical cell values before using them as edge weights.
  bool standardize_numeric = true;
  /// Expand each categorical column into one feature node per category
  /// (edge weight 1); otherwise one node per column with the code as weight.
  bool expand_categorical = true;
};

/// GRAPE-style bipartite graph: instances on the left, features on the right,
/// observed cells as weighted edges. Missing cells produce no edge.
/// `feature_names` (optional out) receives the right-node names.
BipartiteGraph BipartiteFromTable(const TabularDataset& data,
                                  const BipartiteOptions& options = {},
                                  std::vector<std::string>* feature_names =
                                      nullptr);

/// General heterogeneous graph: one "instance" node type plus one node type
/// per categorical column (a node per distinct value), with one relation per
/// column connecting instances to their value nodes (GME/GCT/GraphFC-style).
HeteroGraph HeteroFromTable(const TabularDataset& data);

/// Options for HypergraphFromTable.
struct HypergraphOptions {
  /// Number of quantile bins used to discretize numerical columns into
  /// value nodes.
  size_t numeric_bins = 8;
};

/// HCL/PET-style hypergraph: nodes are distinct feature values (categorical
/// values and numeric quantile bins); each row is a hyperedge over its
/// values. `node_names` (optional out) receives the value-node names.
Hypergraph HypergraphFromTable(const TabularDataset& data,
                               const HypergraphOptions& options = {},
                               std::vector<std::string>* node_names = nullptr);

}  // namespace gnn4tdl
