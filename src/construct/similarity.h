#pragma once

#include <string>

#include "common/status.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// Similarity measures used by rule-based graph construction (Table 3 of the
/// survey). All are expressed as similarities: higher = more alike. Distance
/// metrics (Euclidean, Manhattan) are negated.
enum class SimilarityMetric {
  kEuclidean,     // -||a - b||_2
  kManhattan,     // -||a - b||_1
  kCosine,        // <a, b> / (||a|| ||b||)
  kRbf,           // exp(-gamma ||a - b||^2): the RBF / Gaussian / heat kernel
  kPearson,       // correlation of the two vectors
  kInnerProduct,  // <a, b>
};

const char* SimilarityMetricName(SimilarityMetric m);

/// Parses a metric name produced by SimilarityMetricName (plus the "gaussian"
/// / "heat" aliases for rbf). Unknown names are InvalidArgument.
StatusOr<SimilarityMetric> SimilarityMetricFromName(const std::string& name);

/// Similarity between rows `a` and `b` of `x`. `gamma` is the RBF bandwidth
/// (ignored by other metrics).
double RowSimilarity(const Matrix& x, size_t a, size_t b, SimilarityMetric m,
                     double gamma = 1.0);

/// Dense n x n similarity matrix over the rows of `x` (diagonal = self
/// similarity). Quadratic; intended for rule-based construction on
/// laptop-scale data.
Matrix PairwiseSimilarity(const Matrix& x, SimilarityMetric m,
                          double gamma = 1.0);

}  // namespace gnn4tdl
