#pragma once

#include <vector>

#include "construct/similarity.h"
#include "data/tabular.h"
#include "graph/graph.h"
#include "graph/multiplex.h"

namespace gnn4tdl {

// Rule-based graph construction (Section 4.2.2 / Table 3): the four
// mainstream edge criteria — kNN, thresholding, fully-connected, and
// same-feature-value — each parameterized by a similarity measure.

/// Options for KnnGraph.
struct KnnGraphOptions {
  size_t k = 10;
  SimilarityMetric metric = SimilarityMetric::kEuclidean;
  double gamma = 1.0;  // RBF bandwidth
  /// Keep an edge only if each endpoint is in the other's k nearest
  /// neighbors (mutual kNN yields sparser, higher-precision graphs).
  bool mutual = false;
  /// Carry the similarity as the edge weight (shifted to positive for
  /// distance metrics); otherwise weights are 1.
  bool weighted = false;
};

/// Connects every row of `x` to its k most similar rows. The result is
/// symmetrized (union of directed kNN edges), matching LUNAR/SUBLIME-style
/// instance graphs.
Graph KnnGraph(const Matrix& x, const KnnGraphOptions& options);

/// Options for ThresholdGraph.
struct ThresholdGraphOptions {
  double threshold = 0.0;  // keep pairs with similarity >= threshold
  SimilarityMetric metric = SimilarityMetric::kCosine;
  double gamma = 1.0;
  bool weighted = false;
};

/// Connects every pair with similarity above the threshold (GINN/GAEOD-style).
Graph ThresholdGraph(const Matrix& x, const ThresholdGraphOptions& options);

/// Fully-connected graph over n nodes (Fi-GNN-style feature graphs). If `x`
/// is non-null, edges are weighted by pairwise similarity; otherwise uniform.
struct FullyConnectedOptions {
  SimilarityMetric metric = SimilarityMetric::kCosine;
  double gamma = 1.0;
  bool include_self_loops = false;
};
Graph FullyConnectedGraph(size_t num_nodes, const Matrix* x = nullptr,
                          const FullyConnectedOptions& options = {});

/// Connects instances sharing the same value of categorical column
/// `column_index` (TabGNN/WPN-style). Each value group becomes a clique;
/// groups larger than `max_group_size` are subsampled to a random clique of
/// that size to bound edge count (0 = no cap).
Graph SameFeatureValueGraph(const TabularDataset& data, size_t column_index,
                            size_t max_group_size = 0, uint64_t seed = 42);

/// One multiplex layer per categorical column (TabGNN's formulation).
/// `columns` empty = all categorical columns.
MultiplexGraph MultiplexFromCategoricals(const TabularDataset& data,
                                         std::vector<size_t> columns = {},
                                         size_t max_group_size = 0,
                                         uint64_t seed = 42);

/// kNN instance graph directly from a table *with missing values* (GNN4MV,
/// Table 6 "missing values"): distances use only co-observed columns
/// (std-scaled numerics, 0/1 mismatch for categoricals, averaged over the
/// overlap), so no imputation is needed before graph construction.
Graph MissingAwareKnnGraph(const TabularDataset& data, size_t k);

/// Feature graph over the columns of `x` from the absolute Pearson
/// correlation between features: edge (i, j) iff |corr| >= threshold
/// (IGNNet-style). Nodes = features, so the graph has x.cols() nodes.
Graph FeatureCorrelationGraph(const Matrix& x, double threshold = 0.3);

}  // namespace gnn4tdl
