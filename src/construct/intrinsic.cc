#include "construct/intrinsic.h"

#include <algorithm>
#include <cmath>

namespace gnn4tdl {

BipartiteGraph BipartiteFromTable(const TabularDataset& data,
                                  const BipartiteOptions& options,
                                  std::vector<std::string>* feature_names) {
  std::vector<Triplet> edges;
  std::vector<std::string> names;
  size_t next_feature = 0;

  for (size_t c = 0; c < data.NumCols(); ++c) {
    const Column& col = data.column(c);
    if (col.type == ColumnType::kNumerical) {
      double mean = 0.0, stddev = 1.0;
      if (options.standardize_numeric) {
        double sum = 0.0, sum_sq = 0.0;
        size_t count = 0;
        for (double v : col.numeric) {
          if (std::isnan(v)) continue;
          sum += v;
          sum_sq += v * v;
          ++count;
        }
        if (count > 0) {
          mean = sum / static_cast<double>(count);
          double var = sum_sq / static_cast<double>(count) - mean * mean;
          stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
        }
      }
      for (size_t r = 0; r < data.NumRows(); ++r) {
        double v = col.numeric[r];
        if (std::isnan(v)) continue;
        double w = options.standardize_numeric ? (v - mean) / stddev : v;
        edges.push_back({r, next_feature, w});
      }
      names.push_back(col.name);
      ++next_feature;
    } else if (options.expand_categorical) {
      for (size_t r = 0; r < data.NumRows(); ++r) {
        int code = col.codes[r];
        if (code < 0) continue;
        edges.push_back({r, next_feature + static_cast<size_t>(code), 1.0});
      }
      for (size_t v = 0; v < col.NumCategories(); ++v)
        names.push_back(col.name + "=" + col.categories[v]);
      next_feature += col.NumCategories();
    } else {
      for (size_t r = 0; r < data.NumRows(); ++r) {
        int code = col.codes[r];
        if (code < 0) continue;
        edges.push_back({r, next_feature, static_cast<double>(code)});
      }
      names.push_back(col.name);
      ++next_feature;
    }
  }

  if (feature_names != nullptr) *feature_names = names;
  return BipartiteGraph::FromEdges(data.NumRows(), next_feature,
                                   std::move(edges));
}

HeteroGraph HeteroFromTable(const TabularDataset& data) {
  HeteroGraph hg;
  size_t instance_offset = hg.AddNodeType("instance", data.NumRows());
  GNN4TDL_CHECK_EQ(instance_offset, 0u);

  std::vector<size_t> cat_cols = data.ColumnsOfType(ColumnType::kCategorical);
  std::vector<size_t> value_offsets;
  for (size_t c : cat_cols) {
    const Column& col = data.column(c);
    value_offsets.push_back(hg.AddNodeType(col.name, col.NumCategories()));
  }

  for (size_t idx = 0; idx < cat_cols.size(); ++idx) {
    const Column& col = data.column(cat_cols[idx]);
    std::vector<Edge> edges;
    for (size_t r = 0; r < data.NumRows(); ++r) {
      int code = col.codes[r];
      if (code < 0) continue;
      edges.push_back(
          {r, value_offsets[idx] + static_cast<size_t>(code), 1.0});
    }
    hg.AddRelation("has_" + col.name, edges, /*symmetrize=*/true);
  }
  return hg;
}

Hypergraph HypergraphFromTable(const TabularDataset& data,
                               const HypergraphOptions& options,
                               std::vector<std::string>* node_names) {
  GNN4TDL_CHECK_GE(options.numeric_bins, 2u);
  std::vector<std::string> names;

  // Assign each (column, value/bin) a node id.
  struct ColumnNodes {
    size_t offset = 0;
    std::vector<double> bin_edges;  // for numeric columns
  };
  std::vector<ColumnNodes> per_col(data.NumCols());
  size_t next_node = 0;

  for (size_t c = 0; c < data.NumCols(); ++c) {
    const Column& col = data.column(c);
    per_col[c].offset = next_node;
    if (col.type == ColumnType::kCategorical) {
      for (size_t v = 0; v < col.NumCategories(); ++v)
        names.push_back(col.name + "=" + col.categories[v]);
      next_node += col.NumCategories();
    } else {
      // Quantile bin edges from the observed values.
      std::vector<double> sorted;
      sorted.reserve(col.numeric.size());
      for (double v : col.numeric)
        if (!std::isnan(v)) sorted.push_back(v);
      std::sort(sorted.begin(), sorted.end());
      std::vector<double>& edges = per_col[c].bin_edges;
      for (size_t b = 1; b < options.numeric_bins && !sorted.empty(); ++b) {
        size_t idx = b * sorted.size() / options.numeric_bins;
        idx = std::min(idx, sorted.size() - 1);
        edges.push_back(sorted[idx]);
      }
      for (size_t b = 0; b < options.numeric_bins; ++b)
        names.push_back(col.name + "#bin" + std::to_string(b));
      next_node += options.numeric_bins;
    }
  }

  std::vector<std::vector<size_t>> hyperedges(data.NumRows());
  for (size_t r = 0; r < data.NumRows(); ++r) {
    for (size_t c = 0; c < data.NumCols(); ++c) {
      const Column& col = data.column(c);
      if (col.IsMissing(r)) continue;
      if (col.type == ColumnType::kCategorical) {
        hyperedges[r].push_back(per_col[c].offset +
                                static_cast<size_t>(col.codes[r]));
      } else {
        const std::vector<double>& edges = per_col[c].bin_edges;
        size_t bin = static_cast<size_t>(
            std::upper_bound(edges.begin(), edges.end(), col.numeric[r]) -
            edges.begin());
        hyperedges[r].push_back(per_col[c].offset + bin);
      }
    }
  }

  if (node_names != nullptr) *node_names = names;
  return Hypergraph::FromHyperedges(next_node, hyperedges);
}

}  // namespace gnn4tdl
