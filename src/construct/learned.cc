#include "construct/learned.h"

#include <algorithm>

#include "common/check.h"
#include "nn/fused.h"
#include "nn/ops.h"

namespace gnn4tdl {

CandidateEdges KnnCandidates(const Matrix& x, size_t k,
                             SimilarityMetric metric) {
  const size_t n = x.rows();
  CandidateEdges out;
  std::vector<std::pair<double, size_t>> scored;
  // Collect the symmetric union of directed kNN edges.
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < n; ++i) {
    scored.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      scored.push_back({RowSimilarity(x, i, j, metric), j});
    }
    size_t take = std::min(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<ptrdiff_t>(take),
                      scored.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (size_t t = 0; t < take; ++t) {
      size_t j = scored[t].second;
      pairs.push_back({std::min(i, j), std::max(i, j)});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [a, b] : pairs) {
    out.src.push_back(a);
    out.dst.push_back(b);
    out.src.push_back(b);
    out.dst.push_back(a);
  }
  return out;
}

CandidateEdges FullCandidates(size_t n) {
  CandidateEdges out;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      out.src.push_back(i);
      out.dst.push_back(j);
    }
  return out;
}

MetricGraphLearner::MetricGraphLearner(size_t dim, Rng& rng) {
  (void)rng;
  log_scale_ = RegisterParameter(Matrix::Zeros(dim, 1));  // scale starts at 1
}

Tensor MetricGraphLearner::EdgeWeights(const Tensor& x,
                                       const CandidateEdges& edges) const {
  GNN4TDL_CHECK_EQ(x.cols(), static_cast<size_t>(log_scale_.rows()));
  // Broadcast the per-dimension scale across rows: scale_full = 1_n * s^T.
  Tensor scale_row = ops::Transpose(ops::Exp(log_scale_));  // 1 x d
  Tensor ones_col = Tensor::Constant(Matrix::Ones(x.rows(), 1));
  Tensor scale_full = ops::MatMul(ones_col, scale_row);     // n x d
  Tensor xw = ops::RowL2Normalize(ops::CwiseMul(x, scale_full));

  Tensor hs = ops::GatherRows(xw, edges.src);
  Tensor hd = ops::GatherRows(xw, edges.dst);
  Tensor ones_d = Tensor::Constant(Matrix::Ones(x.cols(), 1));
  Tensor cos = ops::MatMul(ops::CwiseMul(hs, hd), ones_d);  // E x 1
  return ops::Relu(cos);
}

NeuralEdgeScorer::NeuralEdgeScorer(size_t dim, size_t hidden, Rng& rng)
    : mlp_({3 * dim, hidden, 1}, rng, Activation::kRelu) {
  RegisterSubmodule(&mlp_);
}

Tensor NeuralEdgeScorer::EdgeWeights(const Tensor& x,
                                     const CandidateEdges& edges) const {
  Tensor hs = ops::GatherRows(x, edges.src);
  Tensor hd = ops::GatherRows(x, edges.dst);
  Tensor diff = ops::Abs(ops::Sub(hs, hd));
  Tensor feat = ops::ConcatCols(ops::ConcatCols(hs, hd), diff);
  return ops::Sigmoid(mlp_.Forward(feat));
}

DirectAdjacency::DirectAdjacency(size_t num_edges, Rng& rng,
                                 double init_logit) {
  Matrix init(num_edges, 1, init_logit);
  // Small random jitter breaks symmetry between candidate edges.
  for (size_t e = 0; e < num_edges; ++e) init(e, 0) += rng.Normal(0.0, 0.01);
  logits_ = RegisterParameter(std::move(init));
}

Tensor DirectAdjacency::EdgeWeights() const { return ops::Sigmoid(logits_); }

Tensor WeightedAggregate(const Tensor& h, const Tensor& edge_weights,
                         const CandidateEdges& edges, size_t num_nodes) {
  GNN4TDL_CHECK_EQ(edge_weights.rows(), edges.src.size());
  GNN4TDL_CHECK_EQ(edge_weights.cols(), 1u);
  // softmax(log w) over each destination = w / sum(w): a differentiable
  // degree normalization of the learned weights. The whole normalize+gather+
  // scale+scatter chain runs as one fused tape node (nn/fused.h), bit-exact
  // with the unfused Log/EdgeSoftmax/MulColBroadcast/ScatterAddRows chain.
  return fused::NormalizeAggregate(h, edge_weights, edges.src, edges.dst,
                                   num_nodes);
}

}  // namespace gnn4tdl
