#include "construct/similarity.h"

#include <cmath>

#include "common/check.h"

namespace gnn4tdl {

const char* SimilarityMetricName(SimilarityMetric m) {
  switch (m) {
    case SimilarityMetric::kEuclidean:
      return "euclidean";
    case SimilarityMetric::kManhattan:
      return "manhattan";
    case SimilarityMetric::kCosine:
      return "cosine";
    case SimilarityMetric::kRbf:
      return "rbf";
    case SimilarityMetric::kPearson:
      return "pearson";
    case SimilarityMetric::kInnerProduct:
      return "inner_product";
  }
  return "unknown";
}

StatusOr<SimilarityMetric> SimilarityMetricFromName(const std::string& name) {
  if (name == "euclidean") return SimilarityMetric::kEuclidean;
  if (name == "manhattan") return SimilarityMetric::kManhattan;
  if (name == "cosine") return SimilarityMetric::kCosine;
  if (name == "rbf" || name == "gaussian" || name == "heat")
    return SimilarityMetric::kRbf;
  if (name == "pearson") return SimilarityMetric::kPearson;
  if (name == "inner_product") return SimilarityMetric::kInnerProduct;
  return Status::InvalidArgument("unknown similarity metric: '" + name + "'");
}

double RowSimilarity(const Matrix& x, size_t a, size_t b, SimilarityMetric m,
                     double gamma) {
  GNN4TDL_CHECK_LT(a, x.rows());
  GNN4TDL_CHECK_LT(b, x.rows());
  const double* ra = x.row_data(a);
  const double* rb = x.row_data(b);
  const size_t d = x.cols();

  switch (m) {
    case SimilarityMetric::kEuclidean: {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double diff = ra[j] - rb[j];
        s += diff * diff;
      }
      return -std::sqrt(s);
    }
    case SimilarityMetric::kManhattan: {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) s += std::fabs(ra[j] - rb[j]);
      return -s;
    }
    case SimilarityMetric::kCosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (size_t j = 0; j < d; ++j) {
        dot += ra[j] * rb[j];
        na += ra[j] * ra[j];
        nb += rb[j] * rb[j];
      }
      double denom = std::sqrt(na) * std::sqrt(nb);
      return denom > 1e-12 ? dot / denom : 0.0;
    }
    case SimilarityMetric::kRbf: {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double diff = ra[j] - rb[j];
        s += diff * diff;
      }
      return std::exp(-gamma * s);
    }
    case SimilarityMetric::kPearson: {
      double ma = 0.0, mb = 0.0;
      for (size_t j = 0; j < d; ++j) {
        ma += ra[j];
        mb += rb[j];
      }
      ma /= static_cast<double>(d);
      mb /= static_cast<double>(d);
      double cov = 0.0, va = 0.0, vb = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double da = ra[j] - ma;
        double db = rb[j] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
      }
      double denom = std::sqrt(va) * std::sqrt(vb);
      return denom > 1e-12 ? cov / denom : 0.0;
    }
    case SimilarityMetric::kInnerProduct: {
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) dot += ra[j] * rb[j];
      return dot;
    }
  }
  return 0.0;
}

Matrix PairwiseSimilarity(const Matrix& x, SimilarityMetric m, double gamma) {
  const size_t n = x.rows();
  Matrix sim(n, n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a; b < n; ++b) {
      double s = RowSimilarity(x, a, b, m, gamma);
      sim(a, b) = s;
      sim(b, a) = s;
    }
  }
  return sim;
}

}  // namespace gnn4tdl
