#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace gnn4tdl {

// The four taxonomy axes of Figure 2, as configuration enums. The other two
// axes (representation learning backbones and training plans) are declared
// with their implementations: GnnBackbone / GslStrategy in src/models and
// TrainStrategy in models/knn_gnn.h; core/pipeline.h composes all of them.

/// Axis 1 — Graph Formulation (Section 4.1): what the nodes are.
enum class GraphFormulation {
  kInstanceGraph,  // rows as nodes (homogeneous)
  kFeatureGraph,   // columns as nodes (homogeneous)
  kBipartite,      // rows + columns (GRAPE)
  kMultiplex,      // rows as nodes, one layer per relation (TabGNN)
  kHeteroGraph,    // rows + value nodes, typed relations, RGCN (GCT/GraphFC)
  kHypergraph,     // feature values as nodes, rows as hyperedges (HCL/PET)
  kNoGraph,        // baseline models (MLP / GBDT / kNN / linear)
};

const char* GraphFormulationName(GraphFormulation f);
StatusOr<GraphFormulation> GraphFormulationFromName(const std::string& name);

/// Axis 2 — Graph Construction (Section 4.2): how edges are created.
enum class ConstructionMethod {
  kIntrinsic,         // read off the table (bipartite/hetero/hypergraph)
  kKnn,               // rule-based: k nearest neighbors
  kThreshold,         // rule-based: similarity threshold
  kFullyConnected,    // rule-based: complete graph
  kSameFeatureValue,  // rule-based: shared categorical value
  kLearnedMetric,     // learning-based: weighted-cosine metric (IDGL)
  kLearnedNeural,     // learning-based: MLP edge scorer (SLAPS)
  kLearnedDirect,     // learning-based: free adjacency (LDS)
};

const char* ConstructionMethodName(ConstructionMethod m);
StatusOr<ConstructionMethod> ConstructionMethodFromName(const std::string& name);

/// Baseline families for GraphFormulation::kNoGraph.
enum class BaselineKind { kMlp, kLinear, kGbdt, kKnn };

const char* BaselineKindName(BaselineKind b);
StatusOr<BaselineKind> BaselineKindFromName(const std::string& name);

/// All values of each axis (for grid sweeps over the taxonomy).
std::vector<GraphFormulation> AllGraphFormulations();
std::vector<ConstructionMethod> AllConstructionMethods();

}  // namespace gnn4tdl
