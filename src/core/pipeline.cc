#include "core/pipeline.h"

#include "models/bipartite_imputer.h"
#include "models/feature_graph.h"
#include "models/gbdt.h"
#include "models/hetero_rgcn.h"
#include "models/hypergraph_model.h"
#include "models/knn_baseline.h"
#include "models/mlp.h"
#include "models/tabgnn.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace gnn4tdl {

std::string PipelineConfig::Describe() const {
  std::string out = GraphFormulationName(formulation);
  if (formulation == GraphFormulation::kNoGraph) {
    out += std::string("/") + BaselineKindName(baseline);
    return out;
  }
  out += std::string("/") + ConstructionMethodName(construction);
  if (formulation == GraphFormulation::kInstanceGraph &&
      construction != ConstructionMethod::kLearnedMetric &&
      construction != ConstructionMethod::kLearnedNeural &&
      construction != ConstructionMethod::kLearnedDirect) {
    out += std::string("/") + GnnBackboneName(backbone);
  }
  if (strategy != TrainStrategy::kEndToEnd) {
    out += std::string("/") + TrainStrategyName(strategy);
  }
  return out;
}

StatusOr<std::unique_ptr<TabularModel>> BuildModel(
    const PipelineConfig& config) {
  switch (config.formulation) {
    case GraphFormulation::kNoGraph: {
      switch (config.baseline) {
        case BaselineKind::kMlp: {
          MlpModelOptions opts;
          opts.hidden_dims = {config.hidden_dim, config.hidden_dim};
          opts.train = config.train;
          opts.seed = config.seed;
          return std::unique_ptr<TabularModel>(
              std::make_unique<MlpModel>(opts));
        }
        case BaselineKind::kLinear:
          return std::unique_ptr<TabularModel>(
              MakeLinearModel(config.train, config.seed));
        case BaselineKind::kGbdt:
          return std::unique_ptr<TabularModel>(std::make_unique<GbdtModel>(
              GbdtOptions{.seed = config.seed}));
        case BaselineKind::kKnn:
          return std::unique_ptr<TabularModel>(std::make_unique<KnnBaseline>(
              KnnBaselineOptions{.k = config.knn_k, .metric = config.metric}));
      }
      return Status::InvalidArgument("unknown baseline kind");
    }

    case GraphFormulation::kInstanceGraph: {
      // Learning-based construction maps to the GSL model family.
      if (config.construction == ConstructionMethod::kLearnedMetric ||
          config.construction == ConstructionMethod::kLearnedNeural ||
          config.construction == ConstructionMethod::kLearnedDirect) {
        LearnedGraphOptions opts;
        opts.strategy =
            config.construction == ConstructionMethod::kLearnedMetric
                ? GslStrategy::kMetric
                : config.construction == ConstructionMethod::kLearnedNeural
                      ? GslStrategy::kNeural
                      : GslStrategy::kDirect;
        opts.candidate_k = config.knn_k + 5;
        opts.hidden_dim = config.hidden_dim;
        opts.num_layers = config.num_layers;
        opts.smoothness_weight = config.smoothness_weight;
        opts.dae_weight = config.dae_weight;
        opts.train = config.train;
        opts.seed = config.seed;
        return std::unique_ptr<TabularModel>(
            std::make_unique<LearnedGraphGnn>(opts));
      }
      InstanceGraphGnnOptions opts;
      switch (config.construction) {
        case ConstructionMethod::kKnn:
          opts.graph_source = GraphSource::kKnn;
          opts.knn.k = config.knn_k;
          opts.knn.metric = config.metric;
          break;
        case ConstructionMethod::kThreshold:
          opts.graph_source = GraphSource::kThreshold;
          opts.threshold.threshold = config.threshold;
          opts.threshold.metric = config.metric;
          break;
        case ConstructionMethod::kFullyConnected:
          opts.graph_source = GraphSource::kFullyConnected;
          break;
        case ConstructionMethod::kSameFeatureValue:
          opts.graph_source = GraphSource::kMultiplexFlatten;
          break;
        default:
          return Status::InvalidArgument(
              "instance graphs do not support construction method " +
              std::string(ConstructionMethodName(config.construction)));
      }
      opts.backbone = config.backbone;
      opts.hidden_dim = config.hidden_dim;
      opts.num_layers = config.num_layers;
      opts.reconstruction_weight = config.reconstruction_weight;
      opts.dae_weight = config.dae_weight;
      opts.contrastive_weight = config.contrastive_weight;
      opts.smoothness_weight = config.smoothness_weight;
      opts.edge_completion_weight = config.edge_completion_weight;
      opts.strategy = config.strategy;
      opts.train = config.train;
      opts.seed = config.seed;
      return std::unique_ptr<TabularModel>(
          std::make_unique<InstanceGraphGnn>(opts));
    }

    case GraphFormulation::kFeatureGraph: {
      FeatureGraphOptions opts;
      switch (config.construction) {
        case ConstructionMethod::kFullyConnected:
          opts.adjacency = FeatureAdjacency::kFullyConnected;
          break;
        case ConstructionMethod::kLearnedDirect:
          opts.adjacency = FeatureAdjacency::kLearned;
          break;
        default:
          return Status::InvalidArgument(
              "feature graphs support fully_connected or learned_direct "
              "construction only");
      }
      opts.embed_dim = config.hidden_dim / 2 > 0 ? config.hidden_dim / 2 : 8;
      opts.num_layers = config.num_layers;
      opts.train = config.train;
      opts.seed = config.seed;
      return std::unique_ptr<TabularModel>(
          std::make_unique<FeatureGraphModel>(opts));
    }

    case GraphFormulation::kBipartite: {
      if (config.construction != ConstructionMethod::kIntrinsic) {
        return Status::InvalidArgument(
            "bipartite formulation uses intrinsic construction");
      }
      GrapeOptions opts;
      opts.hidden_dim = config.hidden_dim;
      opts.num_layers = config.num_layers;
      opts.train = config.train;
      opts.seed = config.seed;
      return std::unique_ptr<TabularModel>(std::make_unique<GrapeModel>(opts));
    }

    case GraphFormulation::kMultiplex: {
      if (config.construction != ConstructionMethod::kSameFeatureValue &&
          config.construction != ConstructionMethod::kIntrinsic) {
        return Status::InvalidArgument(
            "multiplex formulation uses same_feature_value construction");
      }
      TabGnnOptions opts;
      opts.hidden_dim = config.hidden_dim;
      opts.num_layers = config.num_layers;
      opts.train = config.train;
      opts.seed = config.seed;
      return std::unique_ptr<TabularModel>(std::make_unique<TabGnnModel>(opts));
    }

    case GraphFormulation::kHeteroGraph: {
      if (config.construction != ConstructionMethod::kIntrinsic) {
        return Status::InvalidArgument(
            "hetero_graph formulation uses intrinsic construction");
      }
      HeteroRgcnOptions opts;
      opts.hidden_dim = config.hidden_dim;
      opts.num_layers = config.num_layers;
      opts.train = config.train;
      opts.seed = config.seed;
      return std::unique_ptr<TabularModel>(
          std::make_unique<HeteroRgcnModel>(opts));
    }

    case GraphFormulation::kHypergraph: {
      if (config.construction != ConstructionMethod::kIntrinsic) {
        return Status::InvalidArgument(
            "hypergraph formulation uses intrinsic construction");
      }
      HypergraphModelOptions opts;
      opts.embed_dim = config.hidden_dim;
      opts.num_layers = config.num_layers;
      opts.train = config.train;
      opts.seed = config.seed;
      return std::unique_ptr<TabularModel>(
          std::make_unique<HypergraphModel>(opts));
    }
  }
  return Status::InvalidArgument("unknown graph formulation");
}

StatusOr<PipelineResult> RunPipeline(const PipelineConfig& config,
                                     const TabularDataset& data,
                                     const Split& split) {
  obs::TraceSpan pipeline_span("pipeline/run");
  const obs::Clock* clock = obs::Tracer::Global().clock();

  StatusOr<std::unique_ptr<TabularModel>> model = [&] {
    obs::TraceSpan span("pipeline/build_model");
    return BuildModel(config);
  }();
  if (!model.ok()) return model.status();

  int64_t fit_start_ns = clock->NowNanos();
  {
    obs::TraceSpan span("pipeline/fit");
    GNN4TDL_RETURN_IF_ERROR((*model)->Fit(data, split));
  }
  int64_t fit_end_ns = clock->NowNanos();

  StatusOr<Matrix> predictions = [&] {
    obs::TraceSpan span("pipeline/predict");
    return (*model)->Predict(data);
  }();
  if (!predictions.ok()) return predictions.status();

  PipelineResult result;
  result.model_name = (*model)->Name();
  {
    obs::TraceSpan span("pipeline/evaluate");
    result.eval = EvaluatePredictions(*predictions, data, split.test);
  }
  result.fit_seconds = static_cast<double>(fit_end_ns - fit_start_ns) / 1e9;

  if (auto* gnn = dynamic_cast<InstanceGraphGnn*>(model->get())) {
    result.graph_edges = gnn->graph().num_edges();
    if (!data.class_labels().empty()) {
      result.edge_homophily = gnn->graph().EdgeHomophily(data.class_labels());
    }
  }
  result.model = std::shared_ptr<TabularModel>(std::move(*model));
  return result;
}

}  // namespace gnn4tdl
