#pragma once

#include <memory>
#include <string>
#include <vector>

#include "construct/similarity.h"
#include "core/taxonomy.h"
#include "models/knn_gnn.h"
#include "models/learned_graph.h"
#include "models/model.h"

namespace gnn4tdl {

/// The paper's pipeline (Figure 1) as one configuration object: Graph
/// Formulation -> Graph Construction -> Representation Learning -> Training
/// Plan. BuildModel() maps every valid combination onto the method family
/// that implements it.
struct PipelineConfig {
  // Axis 1 — formulation.
  GraphFormulation formulation = GraphFormulation::kInstanceGraph;
  /// Used only when formulation == kNoGraph.
  BaselineKind baseline = BaselineKind::kMlp;

  // Axis 2 — construction.
  ConstructionMethod construction = ConstructionMethod::kKnn;
  SimilarityMetric metric = SimilarityMetric::kEuclidean;
  size_t knn_k = 10;
  double threshold = 0.7;

  // Axis 3 — representation learning.
  GnnBackbone backbone = GnnBackbone::kGcn;
  size_t hidden_dim = 32;
  size_t num_layers = 2;

  // Axis 4 — training plan (Tables 7-8).
  double reconstruction_weight = 0.0;
  double dae_weight = 0.0;
  double contrastive_weight = 0.0;
  double smoothness_weight = 0.0;
  double edge_completion_weight = 0.0;
  TrainStrategy strategy = TrainStrategy::kEndToEnd;
  TrainOptions train;

  uint64_t seed = 42;

  /// One-line description for experiment tables.
  std::string Describe() const;
};

/// Instantiates the model a config describes. Returns InvalidArgument for
/// combinations the taxonomy does not support (e.g., feature graphs with kNN
/// construction).
StatusOr<std::unique_ptr<TabularModel>> BuildModel(const PipelineConfig& config);

/// Outcome of one pipeline run.
struct PipelineResult {
  std::string model_name;
  EvalResult eval;
  double fit_seconds = 0.0;
  /// Instance-graph statistics where applicable (0 otherwise).
  size_t graph_edges = 0;
  double edge_homophily = 0.0;
  /// The fitted model, shared so callers can freeze or serve it without
  /// retraining. Null only when the run failed before fitting.
  std::shared_ptr<TabularModel> model;
};

/// Builds the model, fits it on (data, split), evaluates on split.test.
StatusOr<PipelineResult> RunPipeline(const PipelineConfig& config,
                                     const TabularDataset& data,
                                     const Split& split);

}  // namespace gnn4tdl
