#include "core/taxonomy.h"

namespace gnn4tdl {

const char* GraphFormulationName(GraphFormulation f) {
  switch (f) {
    case GraphFormulation::kInstanceGraph:
      return "instance_graph";
    case GraphFormulation::kFeatureGraph:
      return "feature_graph";
    case GraphFormulation::kBipartite:
      return "bipartite";
    case GraphFormulation::kMultiplex:
      return "multiplex";
    case GraphFormulation::kHeteroGraph:
      return "hetero_graph";
    case GraphFormulation::kHypergraph:
      return "hypergraph";
    case GraphFormulation::kNoGraph:
      return "no_graph";
  }
  return "unknown";
}

StatusOr<GraphFormulation> GraphFormulationFromName(const std::string& name) {
  for (GraphFormulation f : AllGraphFormulations()) {
    if (name == GraphFormulationName(f)) return f;
  }
  if (name == "no_graph") return GraphFormulation::kNoGraph;
  return Status::InvalidArgument("unknown graph formulation: " + name);
}

const char* ConstructionMethodName(ConstructionMethod m) {
  switch (m) {
    case ConstructionMethod::kIntrinsic:
      return "intrinsic";
    case ConstructionMethod::kKnn:
      return "knn";
    case ConstructionMethod::kThreshold:
      return "threshold";
    case ConstructionMethod::kFullyConnected:
      return "fully_connected";
    case ConstructionMethod::kSameFeatureValue:
      return "same_feature_value";
    case ConstructionMethod::kLearnedMetric:
      return "learned_metric";
    case ConstructionMethod::kLearnedNeural:
      return "learned_neural";
    case ConstructionMethod::kLearnedDirect:
      return "learned_direct";
  }
  return "unknown";
}

StatusOr<ConstructionMethod> ConstructionMethodFromName(
    const std::string& name) {
  for (ConstructionMethod m : AllConstructionMethods()) {
    if (name == ConstructionMethodName(m)) return m;
  }
  return Status::InvalidArgument("unknown construction method: " + name);
}

const char* BaselineKindName(BaselineKind b) {
  switch (b) {
    case BaselineKind::kMlp:
      return "mlp";
    case BaselineKind::kLinear:
      return "linear";
    case BaselineKind::kGbdt:
      return "gbdt";
    case BaselineKind::kKnn:
      return "knn";
  }
  return "unknown";
}

StatusOr<BaselineKind> BaselineKindFromName(const std::string& name) {
  if (name == "mlp") return BaselineKind::kMlp;
  if (name == "linear") return BaselineKind::kLinear;
  if (name == "gbdt") return BaselineKind::kGbdt;
  if (name == "knn") return BaselineKind::kKnn;
  return Status::InvalidArgument("unknown baseline kind: " + name);
}

std::vector<GraphFormulation> AllGraphFormulations() {
  return {GraphFormulation::kInstanceGraph, GraphFormulation::kFeatureGraph,
          GraphFormulation::kBipartite, GraphFormulation::kMultiplex,
          GraphFormulation::kHeteroGraph, GraphFormulation::kHypergraph,
          GraphFormulation::kNoGraph};
}

std::vector<ConstructionMethod> AllConstructionMethods() {
  return {ConstructionMethod::kIntrinsic,
          ConstructionMethod::kKnn,
          ConstructionMethod::kThreshold,
          ConstructionMethod::kFullyConnected,
          ConstructionMethod::kSameFeatureValue,
          ConstructionMethod::kLearnedMetric,
          ConstructionMethod::kLearnedNeural,
          ConstructionMethod::kLearnedDirect};
}

}  // namespace gnn4tdl
