#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace gnn4tdl {

namespace {

void AddNumericColumns(TabularDataset& data, const Matrix& x,
                       const std::string& prefix) {
  for (size_t c = 0; c < x.cols(); ++c) {
    std::vector<double> col(x.rows());
    for (size_t r = 0; r < x.rows(); ++r) col[r] = x(r, c);
    GNN4TDL_CHECK(data.AddNumericColumn(prefix + std::to_string(c),
                                        std::move(col))
                      .ok());
  }
}

}  // namespace

TabularDataset MakeClusters(const ClustersOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.num_rows;
  const size_t d_info = options.dim_informative;
  const int c_count = options.num_classes;
  GNN4TDL_CHECK_GT(c_count, 1);

  // One Gaussian center per class in the informative subspace.
  Matrix centers(static_cast<size_t>(c_count), d_info);
  for (size_t k = 0; k < centers.rows(); ++k)
    for (size_t j = 0; j < d_info; ++j)
      centers(k, j) = rng.Normal(0.0, options.class_sep);

  std::vector<int> labels(n);
  Matrix x(n, d_info + options.dim_noise);
  for (size_t i = 0; i < n; ++i) {
    int y = static_cast<int>(rng.Int(0, c_count - 1));
    labels[i] = y;
    // Optionally sample the feature blob from a *different* class to dial
    // down instance correlation without touching the labels.
    size_t blob = static_cast<size_t>(y);
    if (options.confusion > 0.0 && rng.Bernoulli(options.confusion)) {
      blob = static_cast<size_t>(rng.Int(0, c_count - 1));
    }
    for (size_t j = 0; j < d_info; ++j)
      x(i, j) = centers(blob, j) + rng.Normal(0.0, options.cluster_std);
    for (size_t j = 0; j < options.dim_noise; ++j)
      x(i, d_info + j) = rng.Normal();
  }

  TabularDataset data(n);
  AddNumericColumns(data, x, "f");
  GNN4TDL_CHECK(data.SetClassLabels(std::move(labels), c_count,
                                    c_count == 2
                                        ? TaskType::kBinaryClassification
                                        : TaskType::kMultiClassification)
                    .ok());
  return data;
}

TabularDataset MakeInteraction(const InteractionOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.num_rows;
  GNN4TDL_CHECK_GE(options.order, 2u);
  const size_t d = options.order + options.dim_noise;

  Matrix x(n, d);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    int parity = 0;
    for (size_t j = 0; j < d; ++j) {
      x(i, j) = rng.Normal();
      if (j < options.order && x(i, j) > 0) parity ^= 1;
    }
    labels[i] = parity;
    if (options.flip_prob > 0.0 && rng.Bernoulli(options.flip_prob))
      labels[i] ^= 1;
  }

  TabularDataset data(n);
  AddNumericColumns(data, x, "f");
  GNN4TDL_CHECK(data.SetClassLabels(std::move(labels), 2,
                                    TaskType::kBinaryClassification)
                    .ok());
  return data;
}

TabularDataset MakeMultiRelational(const MultiRelationalOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.num_rows;
  const int c_count = options.num_classes;
  const size_t k_card = options.cardinality;
  GNN4TDL_CHECK_GT(c_count, 1);
  GNN4TDL_CHECK_GE(k_card, 2u);

  // Latent class-effect vector per (relation, value).
  std::vector<Matrix> effects;
  effects.reserve(options.num_relations);
  for (size_t rel = 0; rel < options.num_relations; ++rel)
    effects.push_back(Matrix::Randn(k_card, static_cast<size_t>(c_count), rng));

  std::vector<std::vector<int>> codes(options.num_relations,
                                      std::vector<int>(n));
  std::vector<int> labels(n);
  Matrix numeric(n, options.dim_numeric);

  for (size_t i = 0; i < n; ++i) {
    std::vector<double> score(static_cast<size_t>(c_count), 0.0);
    for (size_t rel = 0; rel < options.num_relations; ++rel) {
      int v = static_cast<int>(rng.Int(0, static_cast<int64_t>(k_card) - 1));
      codes[rel][i] = v;
      for (int c = 0; c < c_count; ++c)
        score[static_cast<size_t>(c)] +=
            effects[rel](static_cast<size_t>(v), static_cast<size_t>(c));
    }
    for (int c = 0; c < c_count; ++c)
      score[static_cast<size_t>(c)] += rng.Normal(0.0, options.effect_noise);
    labels[i] = static_cast<int>(
        std::max_element(score.begin(), score.end()) - score.begin());

    // Numeric features: weak label signal drowned in noise.
    for (size_t j = 0; j < options.dim_numeric; ++j) {
      double signal =
          options.numeric_signal * score[static_cast<size_t>(labels[i])];
      numeric(i, j) = signal + rng.Normal(0.0, 1.0);
    }
  }

  TabularDataset data(n);
  for (size_t rel = 0; rel < options.num_relations; ++rel) {
    std::vector<std::string> cats(k_card);
    for (size_t v = 0; v < k_card; ++v)
      cats[v] = "r" + std::to_string(rel) + "_v" + std::to_string(v);
    GNN4TDL_CHECK(data.AddCategoricalColumn("rel" + std::to_string(rel),
                                            codes[rel], std::move(cats))
                      .ok());
  }
  AddNumericColumns(data, numeric, "num");
  GNN4TDL_CHECK(data.SetClassLabels(std::move(labels), c_count,
                                    c_count == 2
                                        ? TaskType::kBinaryClassification
                                        : TaskType::kMultiClassification)
                    .ok());
  return data;
}

TabularDataset MakeRegressionData(const RegressionOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.num_rows;
  const size_t d = options.dim;
  GNN4TDL_CHECK_GE(d, 2u);

  std::vector<double> linear(d);
  for (double& w : linear) w = rng.Normal();

  struct Interaction {
    size_t a, b;
    double coef;
  };
  std::vector<Interaction> inters;
  for (size_t k = 0; k < options.num_interactions; ++k) {
    size_t a = static_cast<size_t>(rng.Int(0, static_cast<int64_t>(d) - 1));
    size_t b = static_cast<size_t>(rng.Int(0, static_cast<int64_t>(d) - 1));
    if (a == b) b = (b + 1) % d;
    inters.push_back({a, b, rng.Normal(0.0, 1.5)});
  }

  Matrix x = Matrix::Randn(n, d, rng);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (size_t j = 0; j < d; ++j) v += linear[j] * x(i, j);
    for (const Interaction& it : inters) v += it.coef * x(i, it.a) * x(i, it.b);
    y[i] = v + rng.Normal(0.0, options.noise_std);
  }

  TabularDataset data(n);
  AddNumericColumns(data, x, "f");
  GNN4TDL_CHECK(data.SetRegressionLabels(std::move(y)).ok());
  return data;
}

TabularDataset MakeAnomalyData(const AnomalyOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.num_inliers + options.num_outliers;
  const size_t d = options.dim;

  Matrix centers(options.num_clusters, d);
  for (size_t k = 0; k < options.num_clusters; ++k)
    for (size_t j = 0; j < d; ++j) centers(k, j) = rng.Normal(0.0, 2.0);

  Matrix x(n, d);
  std::vector<int> labels(n, 0);
  for (size_t i = 0; i < options.num_inliers; ++i) {
    size_t k = static_cast<size_t>(
        rng.Int(0, static_cast<int64_t>(options.num_clusters) - 1));
    double std_k = options.inlier_std *
                   (1.0 + static_cast<double>(k) * options.density_spread);
    for (size_t j = 0; j < d; ++j)
      x(i, j) = centers(k, j) + rng.Normal(0.0, std_k);
  }
  for (size_t i = options.num_inliers; i < n; ++i) {
    labels[i] = 1;
    for (size_t j = 0; j < d; ++j)
      x(i, j) = rng.Uniform(-options.outlier_box, options.outlier_box);
  }

  // Shuffle rows so anomalies are not a contiguous block.
  std::vector<size_t> perm = rng.Permutation(n);
  Matrix xs(n, d);
  std::vector<int> ls(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) xs(i, j) = x(perm[i], j);
    ls[i] = labels[perm[i]];
  }

  TabularDataset data(n);
  AddNumericColumns(data, xs, "f");
  GNN4TDL_CHECK(
      data.SetClassLabels(std::move(ls), 2, TaskType::kAnomalyDetection).ok());
  return data;
}

TabularDataset MakeCtrData(const CtrOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.num_rows;
  GNN4TDL_CHECK_GE(options.num_users, 2u);
  GNN4TDL_CHECK_GE(options.num_items, 2u);
  GNN4TDL_CHECK_GE(options.num_contexts, 1u);

  // Main effects and FM-style latent factors.
  std::vector<double> user_effect(options.num_users);
  std::vector<double> item_effect(options.num_items);
  std::vector<double> ctx_effect(options.num_contexts);
  for (double& v : user_effect) v = rng.Normal(0.0, 0.5);
  for (double& v : item_effect) v = rng.Normal(0.0, 0.5);
  for (double& v : ctx_effect) v = rng.Normal(0.0, 0.3);
  Matrix user_factors = Matrix::Randn(options.num_users, options.latent_dim,
                                      rng, 1.0 / std::sqrt(
                                               static_cast<double>(
                                                   options.latent_dim)));
  Matrix item_factors = Matrix::Randn(options.num_items, options.latent_dim,
                                      rng, 1.0 / std::sqrt(
                                               static_cast<double>(
                                                   options.latent_dim)));

  std::vector<int> users(n), items(n), contexts(n), labels(n);
  Matrix noise_cols(n, options.dim_numeric_noise);
  for (size_t i = 0; i < n; ++i) {
    size_t u = static_cast<size_t>(
        rng.Int(0, static_cast<int64_t>(options.num_users) - 1));
    size_t it = static_cast<size_t>(
        rng.Int(0, static_cast<int64_t>(options.num_items) - 1));
    size_t c = static_cast<size_t>(
        rng.Int(0, static_cast<int64_t>(options.num_contexts) - 1));
    users[i] = static_cast<int>(u);
    items[i] = static_cast<int>(it);
    contexts[i] = static_cast<int>(c);
    double interaction = 0.0;
    for (size_t k = 0; k < options.latent_dim; ++k)
      interaction += user_factors(u, k) * item_factors(it, k);
    double logit = options.base_rate_logit + user_effect[u] +
                   item_effect[it] + ctx_effect[c] +
                   options.interaction_scale * interaction +
                   rng.Normal(0.0, options.noise);
    double p = 1.0 / (1.0 + std::exp(-logit));
    labels[i] = rng.Bernoulli(p) ? 1 : 0;
    for (size_t j = 0; j < options.dim_numeric_noise; ++j)
      noise_cols(i, j) = rng.Normal();
  }

  TabularDataset data(n);
  auto cat_names = [](const char* prefix, size_t count) {
    std::vector<std::string> names(count);
    for (size_t v = 0; v < count; ++v)
      names[v] = std::string(prefix) + std::to_string(v);
    return names;
  };
  GNN4TDL_CHECK(data.AddCategoricalColumn("user", users,
                                          cat_names("u", options.num_users))
                    .ok());
  GNN4TDL_CHECK(data.AddCategoricalColumn("item", items,
                                          cat_names("i", options.num_items))
                    .ok());
  GNN4TDL_CHECK(
      data.AddCategoricalColumn("context", contexts,
                                cat_names("c", options.num_contexts))
          .ok());
  AddNumericColumns(data, noise_cols, "nz");
  GNN4TDL_CHECK(data.SetClassLabels(std::move(labels), 2,
                                    TaskType::kBinaryClassification)
                    .ok());
  return data;
}

namespace {

/// A random axis-aligned decision tree used as a labeling function.
struct TreeNode {
  bool leaf = false;
  int label = 0;
  size_t feature = 0;
  double threshold = 0.0;
  int left = -1, right = -1;  // indices into the node pool
};

int BuildRandomTree(std::vector<TreeNode>& pool, size_t depth, size_t dim,
                    int num_classes, Rng& rng) {
  TreeNode node;
  if (depth == 0) {
    node.leaf = true;
    node.label = static_cast<int>(rng.Int(0, num_classes - 1));
    pool.push_back(node);
    return static_cast<int>(pool.size()) - 1;
  }
  node.feature = static_cast<size_t>(rng.Int(0, static_cast<int64_t>(dim) - 1));
  node.threshold = rng.Uniform(-1.5, 1.5);
  int self = static_cast<int>(pool.size());
  pool.push_back(node);
  int left = BuildRandomTree(pool, depth - 1, dim, num_classes, rng);
  int right = BuildRandomTree(pool, depth - 1, dim, num_classes, rng);
  pool[static_cast<size_t>(self)].left = left;
  pool[static_cast<size_t>(self)].right = right;
  return self;
}

int EvalTree(const std::vector<TreeNode>& pool, int root, const Matrix& x,
             size_t row) {
  int cur = root;
  while (!pool[static_cast<size_t>(cur)].leaf) {
    const TreeNode& node = pool[static_cast<size_t>(cur)];
    cur = x(row, node.feature) <= node.threshold ? node.left : node.right;
  }
  return pool[static_cast<size_t>(cur)].label;
}

}  // namespace

TabularDataset MakePiecewise(const PiecewiseOptions& options) {
  Rng rng(options.seed);
  const size_t n = options.num_rows;
  Matrix x(n, options.dim);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < options.dim; ++j) x(i, j) = rng.Uniform(-2.0, 2.0);

  std::vector<TreeNode> pool;
  int root = BuildRandomTree(pool, options.tree_depth, options.dim,
                             options.num_classes, rng);

  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = EvalTree(pool, root, x, i);
    if (options.flip_prob > 0.0 && rng.Bernoulli(options.flip_prob))
      labels[i] = static_cast<int>(rng.Int(0, options.num_classes - 1));
  }

  TabularDataset data(n);
  AddNumericColumns(data, x, "f");
  GNN4TDL_CHECK(data.SetClassLabels(std::move(labels), options.num_classes,
                                    options.num_classes == 2
                                        ? TaskType::kBinaryClassification
                                        : TaskType::kMultiClassification)
                    .ok());
  return data;
}

void InjectMissing(TabularDataset& data, double rate,
                   MissingMechanism mechanism, uint64_t seed) {
  GNN4TDL_CHECK(rate >= 0.0 && rate < 1.0);
  Rng rng(seed);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  for (size_t c = 0; c < data.NumCols(); ++c) {
    Column& col = data.mutable_column(c);
    if (col.type == ColumnType::kNumerical) {
      // For MNAR, rank-based: the largest values are ~2x as likely missing.
      double lo = 0.0, hi = 0.0;
      if (mechanism == MissingMechanism::kMnar) {
        lo = *std::min_element(col.numeric.begin(), col.numeric.end());
        hi = *std::max_element(col.numeric.begin(), col.numeric.end());
        if (hi <= lo) hi = lo + 1.0;
      }
      for (double& v : col.numeric) {
        if (std::isnan(v)) continue;
        double p = rate;
        if (mechanism == MissingMechanism::kMnar) {
          double t = (v - lo) / (hi - lo);  // 0..1
          p = rate * (0.5 + t);             // 0.5x..1.5x the base rate
        }
        if (rng.Bernoulli(std::min(p, 0.95))) v = nan;
      }
    } else {
      for (int& code : col.codes) {
        if (code < 0) continue;
        if (rng.Bernoulli(rate)) code = -1;
      }
    }
  }
}

}  // namespace gnn4tdl
