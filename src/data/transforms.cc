#include "data/transforms.h"

#include <cmath>
#include <istream>
#include <ostream>

namespace gnn4tdl {

namespace {
constexpr char kFeaturizerMagic[] = "gnn4tdl-featurizer-v1";
}  // namespace

Status Featurizer::Fit(const TabularDataset& data,
                       const std::vector<size_t>& fit_rows) {
  num_source_cols_ = data.NumCols();
  if (num_source_cols_ == 0) {
    return Status::InvalidArgument("Featurizer::Fit on dataset with no columns");
  }
  numeric_stats_.assign(num_source_cols_, {});
  cardinalities_.assign(num_source_cols_, 0);
  has_missing_.assign(num_source_cols_, false);

  std::vector<size_t> rows = fit_rows;
  if (rows.empty()) {
    rows.resize(data.NumRows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }

  for (size_t c = 0; c < num_source_cols_; ++c) {
    const Column& col = data.column(c);
    for (size_t r = 0; r < data.NumRows(); ++r)
      if (col.IsMissing(r)) has_missing_[c] = true;

    if (col.type == ColumnType::kNumerical) {
      double sum = 0.0, sum_sq = 0.0;
      size_t count = 0;
      for (size_t r : rows) {
        if (r >= data.NumRows()) {
          return Status::OutOfRange("fit row index out of range");
        }
        double v = col.numeric[r];
        if (std::isnan(v)) continue;
        sum += v;
        sum_sq += v * v;
        ++count;
      }
      NumericStats stats;
      if (count > 0) {
        stats.mean = sum / static_cast<double>(count);
        double var = sum_sq / static_cast<double>(count) - stats.mean * stats.mean;
        stats.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
      }
      numeric_stats_[c] = stats;
    } else {
      cardinalities_[c] = col.NumCategories();
    }
  }

  // Freeze the output schema.
  output_dim_ = 0;
  output_to_source_.clear();
  for (size_t c = 0; c < num_source_cols_; ++c) {
    const Column& col = data.column(c);
    size_t width = 1;
    if (col.type == ColumnType::kCategorical && options_.one_hot)
      width = std::max<size_t>(cardinalities_[c], 1);
    for (size_t k = 0; k < width; ++k) output_to_source_.push_back(c);
    output_dim_ += width;
  }
  if (options_.add_missing_indicators) {
    for (size_t c = 0; c < num_source_cols_; ++c) {
      if (has_missing_[c]) {
        output_to_source_.push_back(c);
        ++output_dim_;
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<Matrix> Featurizer::Transform(const TabularDataset& data) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Featurizer::Transform before Fit");
  }
  if (data.NumCols() != num_source_cols_) {
    return Status::InvalidArgument("schema mismatch: fitted on " +
                                   std::to_string(num_source_cols_) +
                                   " columns, got " +
                                   std::to_string(data.NumCols()));
  }
  const size_t n = data.NumRows();
  Matrix x(n, output_dim_);

  size_t out_col = 0;
  for (size_t c = 0; c < num_source_cols_; ++c) {
    const Column& col = data.column(c);
    if (col.type == ColumnType::kNumerical) {
      const NumericStats& stats = numeric_stats_[c];
      for (size_t r = 0; r < n; ++r) {
        double v = col.numeric[r];
        if (std::isnan(v)) {
          x(r, out_col) = options_.missing_fill;
        } else if (options_.standardize) {
          x(r, out_col) = (v - stats.mean) / stats.stddev;
        } else {
          x(r, out_col) = v;
        }
      }
      ++out_col;
    } else if (options_.one_hot) {
      size_t width = std::max<size_t>(cardinalities_[c], 1);
      for (size_t r = 0; r < n; ++r) {
        int code = col.codes[r];
        if (code >= 0 && static_cast<size_t>(code) < width)
          x(r, out_col + static_cast<size_t>(code)) = 1.0;
        // Missing (-1) leaves the block all-zero.
      }
      out_col += width;
    } else {
      for (size_t r = 0; r < n; ++r)
        x(r, out_col) = col.codes[r] >= 0 ? static_cast<double>(col.codes[r])
                                          : options_.missing_fill;
      ++out_col;
    }
  }

  if (options_.add_missing_indicators) {
    for (size_t c = 0; c < num_source_cols_; ++c) {
      if (!has_missing_[c]) continue;
      const Column& col = data.column(c);
      for (size_t r = 0; r < n; ++r)
        x(r, out_col) = col.IsMissing(r) ? 1.0 : 0.0;
      ++out_col;
    }
  }
  GNN4TDL_CHECK_EQ(out_col, output_dim_);
  return x;
}

Status Featurizer::Save(std::ostream& out) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Featurizer::Save before Fit");
  }
  if (!out) return Status::IoError("featurizer output stream is not writable");
  std::streamsize old_precision = out.precision(17);
  out << kFeaturizerMagic << '\n';
  out << options_.standardize << ' ' << options_.one_hot << ' '
      << options_.missing_fill << ' ' << options_.add_missing_indicators
      << '\n';
  out << num_source_cols_ << ' ' << output_dim_ << '\n';
  for (size_t c = 0; c < num_source_cols_; ++c) {
    out << numeric_stats_[c].mean << ' ' << numeric_stats_[c].stddev << ' '
        << cardinalities_[c] << ' ' << (has_missing_[c] ? 1 : 0) << '\n';
  }
  for (size_t j = 0; j < output_to_source_.size(); ++j) {
    out << output_to_source_[j] << (j + 1 < output_to_source_.size() ? ' ' : '\n');
  }
  out.precision(old_precision);
  if (!out) return Status::IoError("write failure on featurizer stream");
  return Status::OK();
}

StatusOr<Featurizer> Featurizer::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kFeaturizerMagic) {
    return Status::InvalidArgument("stream is not a gnn4tdl featurizer block");
  }
  FeaturizerOptions options;
  if (!(in >> options.standardize >> options.one_hot >> options.missing_fill >>
        options.add_missing_indicators)) {
    return Status::IoError("truncated featurizer block");
  }
  Featurizer f(options);
  if (!(in >> f.num_source_cols_ >> f.output_dim_)) {
    return Status::IoError("truncated featurizer block");
  }
  f.numeric_stats_.resize(f.num_source_cols_);
  f.cardinalities_.resize(f.num_source_cols_);
  f.has_missing_.resize(f.num_source_cols_);
  for (size_t c = 0; c < f.num_source_cols_; ++c) {
    size_t cardinality = 0;
    int missing = 0;
    if (!(in >> f.numeric_stats_[c].mean >> f.numeric_stats_[c].stddev >>
          cardinality >> missing)) {
      return Status::IoError("truncated featurizer block");
    }
    f.cardinalities_[c] = cardinality;
    f.has_missing_[c] = missing != 0;
  }
  f.output_to_source_.resize(f.output_dim_);
  for (size_t j = 0; j < f.output_dim_; ++j) {
    if (!(in >> f.output_to_source_[j])) {
      return Status::IoError("truncated featurizer block");
    }
  }
  f.fitted_ = true;
  return f;
}

StatusOr<Matrix> Featurizer::FitTransform(const TabularDataset& data) {
  GNN4TDL_RETURN_IF_ERROR(Fit(data));
  return Transform(data);
}

std::vector<std::pair<double, double>> StandardizeColumns(
    Matrix& x, const std::vector<size_t>& fit_rows) {
  std::vector<size_t> rows = fit_rows;
  if (rows.empty()) {
    rows.resize(x.rows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }
  std::vector<std::pair<double, double>> stats(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    double sum = 0.0, sum_sq = 0.0;
    for (size_t r : rows) {
      sum += x(r, c);
      sum_sq += x(r, c) * x(r, c);
    }
    double mean = sum / static_cast<double>(rows.size());
    double var = sum_sq / static_cast<double>(rows.size()) - mean * mean;
    double stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
    stats[c] = {mean, stddev};
    for (size_t r = 0; r < x.rows(); ++r) x(r, c) = (x(r, c) - mean) / stddev;
  }
  return stats;
}

}  // namespace gnn4tdl
