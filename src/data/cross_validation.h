#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/split.h"
#include "data/tabular.h"

namespace gnn4tdl {

/// K-fold splits: fold i's rows are the test set, a slice of the remainder is
/// validation, the rest train. Stratified by class labels when available.
std::vector<Split> KFoldSplits(const TabularDataset& data, size_t num_folds,
                               double val_frac, Rng& rng);

/// Result of a cross-validated evaluation: per-fold metric plus aggregate.
struct CrossValidationResult {
  std::vector<double> fold_metrics;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs `metric_fn(data, split)` over k folds and aggregates. The callback
/// builds + fits a fresh model per fold and returns a scalar metric (e.g.,
/// test accuracy), or an error status that aborts the run.
StatusOr<CrossValidationResult> CrossValidate(
    const TabularDataset& data, size_t num_folds, double val_frac, Rng& rng,
    const std::function<StatusOr<double>(const TabularDataset&, const Split&)>&
        metric_fn);

}  // namespace gnn4tdl
