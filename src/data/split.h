#pragma once

#include <vector>

#include "common/rng.h"

namespace gnn4tdl {

/// Disjoint train/val/test row indices (Section 2.1: D = Dtrain ∪ Dval ∪ Dtest).
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> val;
  std::vector<size_t> test;

  /// 0/1 weights over all n rows: 1 for rows in `subset`. The loss-masking
  /// format the semi-supervised losses in nn/ops.h consume.
  static std::vector<double> MaskFor(const std::vector<size_t>& subset, size_t n);
};

/// Uniformly random split. Fractions must be positive and sum to <= 1; any
/// remainder goes to test.
Split RandomSplit(size_t n, double train_frac, double val_frac, Rng& rng);

/// Class-stratified split: each class appears in train/val/test in the same
/// proportions. Falls back to round-robin within tiny classes.
Split StratifiedSplit(const std::vector<int>& labels, double train_frac,
                      double val_frac, Rng& rng);

/// Label-scarce variant for semi-supervised experiments (Section 2.5,
/// "supervision signal"): keeps only `labels_per_class` training labels per
/// class; the rest of the would-be training rows are dropped from `train`
/// (they remain visible to graph construction as unlabeled nodes).
Split LabelScarceSplit(const std::vector<int>& labels, size_t labels_per_class,
                       double val_frac, double test_frac, Rng& rng);

}  // namespace gnn4tdl
