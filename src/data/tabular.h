#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// Prediction task carried by a dataset (Section 2.1 of the survey).
enum class TaskType {
  kBinaryClassification,
  kMultiClassification,
  kRegression,
  kAnomalyDetection,  // binary labels, trained without (or with few) labels
  kNone,              // unlabeled
};

const char* TaskTypeName(TaskType t);

/// Column kind in a tabular dataset.
enum class ColumnType { kNumerical, kCategorical };

/// One column of a tabular dataset. Numerical columns store doubles with NaN
/// for missing entries; categorical columns store integer codes with -1 for
/// missing, plus the code -> label mapping.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kNumerical;

  /// Values for numerical columns (NaN = missing). Size = dataset rows.
  std::vector<double> numeric;

  /// Codes for categorical columns (-1 = missing). Size = dataset rows.
  std::vector<int> codes;

  /// Label for each categorical code.
  std::vector<std::string> categories;

  size_t NumCategories() const { return categories.size(); }

  bool IsMissing(size_t row) const {
    return type == ColumnType::kNumerical ? std::isnan(numeric[row])
                                          : codes[row] < 0;
  }
};

/// An in-memory tabular dataset D = {(x_i, y_i)}: typed columns plus an
/// optional label vector. The single data interchange type of the library;
/// graph formulations (src/construct) and featurizers (data/transforms)
/// consume it.
class TabularDataset {
 public:
  TabularDataset() = default;

  /// Creates an empty dataset with `num_rows` rows and no columns yet.
  explicit TabularDataset(size_t num_rows) : num_rows_(num_rows) {}

  size_t NumRows() const { return num_rows_; }
  size_t NumCols() const { return columns_.size(); }

  /// Adds a numerical column; `values` must have NumRows() entries.
  Status AddNumericColumn(std::string name, std::vector<double> values);

  /// Adds a categorical column from integer codes; codes must be < categories
  /// size (or -1 for missing).
  Status AddCategoricalColumn(std::string name, std::vector<int> codes,
                              std::vector<std::string> categories);

  const Column& column(size_t i) const {
    GNN4TDL_CHECK_LT(i, columns_.size());
    return columns_[i];
  }
  Column& mutable_column(size_t i) {
    GNN4TDL_CHECK_LT(i, columns_.size());
    return columns_[i];
  }

  /// Index of the column named `name`, or NotFound.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// Indices of all columns of `type`.
  std::vector<size_t> ColumnsOfType(ColumnType type) const;

  // --- Labels ---------------------------------------------------------------

  TaskType task() const { return task_; }

  /// Sets integer class labels (binary or multi-class / anomaly flags).
  Status SetClassLabels(std::vector<int> labels, int num_classes,
                        TaskType task = TaskType::kMultiClassification);

  /// Sets regression targets.
  Status SetRegressionLabels(std::vector<double> labels);

  int num_classes() const { return num_classes_; }
  const std::vector<int>& class_labels() const { return class_labels_; }
  const std::vector<double>& regression_labels() const {
    return regression_labels_;
  }

  /// Regression targets as an n x 1 matrix.
  Matrix RegressionLabelMatrix() const;

  /// Fraction of missing cells across all columns.
  double MissingFraction() const;

 private:
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
  TaskType task_ = TaskType::kNone;
  int num_classes_ = 0;
  std::vector<int> class_labels_;
  std::vector<double> regression_labels_;
};

}  // namespace gnn4tdl
