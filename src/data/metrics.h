#pragma once

#include <vector>

#include "tensor/matrix.h"

namespace gnn4tdl {

/// Classification accuracy of argmax(logits) vs labels over `rows` (empty =
/// all rows).
double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<size_t>& rows = {});

/// Area under the ROC curve for binary labels, from a score per row (higher =
/// more positive). Ties are handled by midrank. Returns 0.5 when one class is
/// absent.
double Auroc(const std::vector<double>& scores, const std::vector<int>& labels,
             const std::vector<size_t>& rows = {});

/// Macro-averaged F1 over classes present in the evaluated rows.
double MacroF1(const Matrix& logits, const std::vector<int>& labels,
               int num_classes, const std::vector<size_t>& rows = {});

/// Root-mean-squared error of predictions (n x 1) vs targets over `rows`.
double Rmse(const Matrix& pred, const std::vector<double>& targets,
            const std::vector<size_t>& rows = {});

/// Mean absolute error.
double Mae(const Matrix& pred, const std::vector<double>& targets,
           const std::vector<size_t>& rows = {});

/// Coefficient of determination R^2 (1 = perfect; can be negative).
double R2(const Matrix& pred, const std::vector<double>& targets,
          const std::vector<size_t>& rows = {});

/// num_classes x num_classes confusion matrix over `rows`:
/// entry (t, p) = number of rows with true label t predicted as p.
Matrix ConfusionMatrix(const Matrix& logits, const std::vector<int>& labels,
                       int num_classes, const std::vector<size_t>& rows = {});

/// Positive-class probabilities from binary logits: softmax column 1 if
/// logits has 2 columns, sigmoid if it has 1.
std::vector<double> PositiveClassScores(const Matrix& logits);

}  // namespace gnn4tdl
