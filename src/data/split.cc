#include "data/split.h"

#include <algorithm>
#include <cstddef>
#include <map>

#include "common/check.h"

namespace gnn4tdl {

std::vector<double> Split::MaskFor(const std::vector<size_t>& subset, size_t n) {
  std::vector<double> mask(n, 0.0);
  for (size_t i : subset) {
    GNN4TDL_CHECK_LT(i, n);
    mask[i] = 1.0;
  }
  return mask;
}

Split RandomSplit(size_t n, double train_frac, double val_frac, Rng& rng) {
  GNN4TDL_CHECK(train_frac > 0.0 && val_frac >= 0.0 &&
                train_frac + val_frac <= 1.0);
  std::vector<size_t> perm = rng.Permutation(n);
  size_t n_train = static_cast<size_t>(train_frac * static_cast<double>(n));
  size_t n_val = static_cast<size_t>(val_frac * static_cast<double>(n));
  Split split;
  split.train.assign(perm.begin(), perm.begin() + static_cast<ptrdiff_t>(n_train));
  split.val.assign(perm.begin() + static_cast<ptrdiff_t>(n_train),
                   perm.begin() + static_cast<ptrdiff_t>(n_train + n_val));
  split.test.assign(perm.begin() + static_cast<ptrdiff_t>(n_train + n_val),
                    perm.end());
  return split;
}

Split StratifiedSplit(const std::vector<int>& labels, double train_frac,
                      double val_frac, Rng& rng) {
  GNN4TDL_CHECK(train_frac > 0.0 && val_frac >= 0.0 &&
                train_frac + val_frac <= 1.0);
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  Split split;
  for (auto& [label, idx] : by_class) {
    (void)label;
    rng.Shuffle(idx);
    size_t n_train =
        static_cast<size_t>(train_frac * static_cast<double>(idx.size()));
    size_t n_val =
        static_cast<size_t>(val_frac * static_cast<double>(idx.size()));
    // Guarantee at least one training example per class when possible.
    if (n_train == 0 && !idx.empty()) n_train = 1;
    for (size_t i = 0; i < idx.size(); ++i) {
      if (i < n_train) {
        split.train.push_back(idx[i]);
      } else if (i < n_train + n_val) {
        split.val.push_back(idx[i]);
      } else {
        split.test.push_back(idx[i]);
      }
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

Split LabelScarceSplit(const std::vector<int>& labels, size_t labels_per_class,
                       double val_frac, double test_frac, Rng& rng) {
  GNN4TDL_CHECK(val_frac >= 0.0 && test_frac > 0.0 &&
                val_frac + test_frac < 1.0);
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  Split split;
  for (auto& [label, idx] : by_class) {
    (void)label;
    rng.Shuffle(idx);
    size_t n_val = static_cast<size_t>(val_frac * static_cast<double>(idx.size()));
    size_t n_test =
        static_cast<size_t>(test_frac * static_cast<double>(idx.size()));
    size_t n_train = std::min(labels_per_class, idx.size() - n_val - n_test);
    size_t i = 0;
    for (; i < n_train; ++i) split.train.push_back(idx[i]);
    for (; i < n_train + n_val; ++i) split.val.push_back(idx[i]);
    for (; i < n_train + n_val + n_test; ++i) split.test.push_back(idx[i]);
    // Remaining rows stay unlabeled (in no subset).
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace gnn4tdl
