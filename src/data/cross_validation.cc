#include "data/cross_validation.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace gnn4tdl {

std::vector<Split> KFoldSplits(const TabularDataset& data, size_t num_folds,
                               double val_frac, Rng& rng) {
  GNN4TDL_CHECK_GE(num_folds, 2u);
  GNN4TDL_CHECK(val_frac >= 0.0 && val_frac < 1.0);
  const size_t n = data.NumRows();

  // Assign each row a fold, stratified by label when present.
  std::vector<size_t> fold_of(n, 0);
  if (!data.class_labels().empty()) {
    std::map<int, std::vector<size_t>> by_class;
    for (size_t i = 0; i < n; ++i)
      by_class[data.class_labels()[i]].push_back(i);
    for (auto& [label, idx] : by_class) {
      (void)label;
      rng.Shuffle(idx);
      for (size_t t = 0; t < idx.size(); ++t)
        fold_of[idx[t]] = t % num_folds;
    }
  } else {
    std::vector<size_t> perm = rng.Permutation(n);
    for (size_t t = 0; t < n; ++t) fold_of[perm[t]] = t % num_folds;
  }

  std::vector<Split> splits(num_folds);
  for (size_t fold = 0; fold < num_folds; ++fold) {
    std::vector<size_t> rest;
    for (size_t i = 0; i < n; ++i) {
      if (fold_of[i] == fold) {
        splits[fold].test.push_back(i);
      } else {
        rest.push_back(i);
      }
    }
    rng.Shuffle(rest);
    size_t n_val = static_cast<size_t>(val_frac * static_cast<double>(rest.size()));
    for (size_t t = 0; t < rest.size(); ++t)
      (t < n_val ? splits[fold].val : splits[fold].train).push_back(rest[t]);
    std::sort(splits[fold].train.begin(), splits[fold].train.end());
    std::sort(splits[fold].val.begin(), splits[fold].val.end());
    std::sort(splits[fold].test.begin(), splits[fold].test.end());
  }
  return splits;
}

StatusOr<CrossValidationResult> CrossValidate(
    const TabularDataset& data, size_t num_folds, double val_frac, Rng& rng,
    const std::function<StatusOr<double>(const TabularDataset&, const Split&)>&
        metric_fn) {
  std::vector<Split> splits = KFoldSplits(data, num_folds, val_frac, rng);
  CrossValidationResult result;
  for (const Split& split : splits) {
    StatusOr<double> metric = metric_fn(data, split);
    if (!metric.ok()) return metric.status();
    result.fold_metrics.push_back(*metric);
  }
  for (double m : result.fold_metrics) result.mean += m;
  result.mean /= static_cast<double>(result.fold_metrics.size());
  if (result.fold_metrics.size() > 1) {
    double ss = 0.0;
    for (double m : result.fold_metrics)
      ss += (m - result.mean) * (m - result.mean);
    result.stddev =
        std::sqrt(ss / static_cast<double>(result.fold_metrics.size() - 1));
  }
  return result;
}

}  // namespace gnn4tdl
