#pragma once

#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "data/tabular.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// Options controlling how a TabularDataset is turned into a dense feature
/// matrix for model input.
struct FeaturizerOptions {
  /// Z-score numerical columns using statistics of the rows in `fit_rows`
  /// (typically the training split, to avoid leakage).
  bool standardize = true;

  /// One-hot encode categorical columns (otherwise raw codes are emitted as a
  /// single numeric column each).
  bool one_hot = true;

  /// Imputation value for missing numerical entries *after* standardization
  /// (0 = the column mean when standardizing).
  double missing_fill = 0.0;

  /// Append one 0/1 indicator column per input column that contains missing
  /// values.
  bool add_missing_indicators = false;
};

/// Converts typed tabular columns into a dense n x d feature matrix:
/// standardization for numeric columns, one-hot for categoricals, and
/// configurable missing-value handling. Fit on a row subset, apply to all.
class Featurizer {
 public:
  explicit Featurizer(FeaturizerOptions options = {}) : options_(options) {}

  /// Computes per-column statistics from `fit_rows` of `data` (empty = all
  /// rows) and freezes the output schema.
  Status Fit(const TabularDataset& data, const std::vector<size_t>& fit_rows = {});

  /// Applies the fitted transform to every row of `data` (same schema as the
  /// fit dataset).
  StatusOr<Matrix> Transform(const TabularDataset& data) const;

  /// Fit on all rows, then transform.
  StatusOr<Matrix> FitTransform(const TabularDataset& data);

  /// Output feature dimension (valid after Fit).
  size_t OutputDim() const { return output_dim_; }

  /// For output column j, the index of the source dataset column it came from
  /// (valid after Fit). One-hot blocks map every column back to their source.
  const std::vector<size_t>& OutputToSourceColumn() const {
    return output_to_source_;
  }

  /// Serializes the fitted transform (options + per-column statistics) as a
  /// self-delimiting text block, so a serving process can reproduce
  /// Transform() exactly without the training data.
  Status Save(std::ostream& out) const;

  /// Restores a featurizer saved by Save(). The result is fitted.
  static StatusOr<Featurizer> Load(std::istream& in);

 private:
  struct NumericStats {
    double mean = 0.0;
    double stddev = 1.0;
  };

  FeaturizerOptions options_;
  bool fitted_ = false;
  size_t num_source_cols_ = 0;
  std::vector<NumericStats> numeric_stats_;   // per source column (unused slots for categoricals)
  std::vector<size_t> cardinalities_;         // per source column (0 for numeric)
  std::vector<bool> has_missing_;             // per source column at fit time
  size_t output_dim_ = 0;
  std::vector<size_t> output_to_source_;
};

/// Standardizes the columns of a plain matrix in place using rows `fit_rows`
/// for the statistics (empty = all rows). Returns the (mean, stddev) pairs.
std::vector<std::pair<double, double>> StandardizeColumns(
    Matrix& x, const std::vector<size_t>& fit_rows = {});

}  // namespace gnn4tdl
