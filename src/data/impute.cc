#include "data/impute.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/rng.h"
#include "tensor/linalg.h"

namespace gnn4tdl {

namespace {

struct ColumnStats {
  double mean = 0.0;
  double median = 0.0;
  double stddev = 1.0;
  int mode = 0;
  bool has_observed = false;
};

ColumnStats ComputeStats(const Column& col) {
  ColumnStats stats;
  if (col.type == ColumnType::kNumerical) {
    std::vector<double> observed;
    for (double v : col.numeric)
      if (!std::isnan(v)) observed.push_back(v);
    if (observed.empty()) return stats;
    stats.has_observed = true;
    double sum = 0.0, sum_sq = 0.0;
    for (double v : observed) {
      sum += v;
      sum_sq += v * v;
    }
    stats.mean = sum / static_cast<double>(observed.size());
    double var =
        sum_sq / static_cast<double>(observed.size()) - stats.mean * stats.mean;
    stats.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
    std::sort(observed.begin(), observed.end());
    stats.median = observed[observed.size() / 2];
  } else {
    std::map<int, size_t> counts;
    for (int code : col.codes)
      if (code >= 0) ++counts[code];
    if (counts.empty()) return stats;
    stats.has_observed = true;
    size_t best = 0;
    for (const auto& [code, count] : counts) {
      if (count > best) {
        best = count;
        stats.mode = code;
      }
    }
  }
  return stats;
}

}  // namespace

Status SimpleImpute(TabularDataset& data, SimpleImputeStrategy strategy) {
  for (size_t c = 0; c < data.NumCols(); ++c) {
    Column& col = data.mutable_column(c);
    ColumnStats stats = ComputeStats(col);
    if (!stats.has_observed) {
      return Status::FailedPrecondition("column '" + col.name +
                                        "' has no observed values");
    }
    if (col.type == ColumnType::kNumerical) {
      double fill = strategy == SimpleImputeStrategy::kMean ? stats.mean
                                                            : stats.median;
      for (double& v : col.numeric)
        if (std::isnan(v)) v = fill;
    } else {
      for (int& code : col.codes)
        if (code < 0) code = stats.mode;
    }
  }
  return Status::OK();
}

Status KnnImpute(TabularDataset& data, const KnnImputeOptions& options) {
  const size_t n = data.NumRows();
  const size_t d = data.NumCols();
  if (options.k == 0) return Status::InvalidArgument("k must be positive");

  std::vector<ColumnStats> stats(d);
  for (size_t c = 0; c < d; ++c) {
    stats[c] = ComputeStats(data.column(c));
    if (!stats[c].has_observed) {
      return Status::FailedPrecondition("column '" + data.column(c).name +
                                        "' has no observed values");
    }
  }

  // Distance over co-observed columns, std-scaled for numerics and 0/1
  // mismatch for categoricals; averaged over the overlap.
  auto distance = [&](size_t a, size_t b) {
    double sum = 0.0;
    size_t overlap = 0;
    for (size_t c = 0; c < d; ++c) {
      const Column& col = data.column(c);
      if (col.IsMissing(a) || col.IsMissing(b)) continue;
      ++overlap;
      if (col.type == ColumnType::kNumerical) {
        double diff = (col.numeric[a] - col.numeric[b]) / stats[c].stddev;
        sum += diff * diff;
      } else {
        sum += col.codes[a] == col.codes[b] ? 0.0 : 1.0;
      }
    }
    if (overlap == 0) return 1e300;
    return sum / static_cast<double>(overlap);
  };

  // Collect fills first, apply after (so imputation order has no effect).
  struct NumericFill {
    size_t row, col;
    double value;
  };
  struct CategoricalFill {
    size_t row, col;
    int code;
  };
  std::vector<NumericFill> numeric_fills;
  std::vector<CategoricalFill> categorical_fills;

  std::vector<std::pair<double, size_t>> scored;
  for (size_t r = 0; r < n; ++r) {
    bool incomplete = false;
    for (size_t c = 0; c < d; ++c)
      if (data.column(c).IsMissing(r)) incomplete = true;
    if (!incomplete) continue;

    scored.clear();
    for (size_t j = 0; j < n; ++j) {
      if (j == r) continue;
      scored.push_back({distance(r, j), j});
    }
    size_t take = std::min(options.k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<ptrdiff_t>(take),
                      scored.end());

    for (size_t c = 0; c < d; ++c) {
      const Column& col = data.column(c);
      if (!col.IsMissing(r)) continue;
      if (col.type == ColumnType::kNumerical) {
        double sum = 0.0;
        size_t count = 0;
        for (size_t t = 0; t < take; ++t) {
          size_t j = scored[t].second;
          if (!col.IsMissing(j)) {
            sum += col.numeric[j];
            ++count;
          }
        }
        numeric_fills.push_back(
            {r, c, count > 0 ? sum / static_cast<double>(count)
                             : stats[c].mean});
      } else {
        std::map<int, size_t> votes;
        for (size_t t = 0; t < take; ++t) {
          size_t j = scored[t].second;
          if (!col.IsMissing(j)) ++votes[col.codes[j]];
        }
        int winner = stats[c].mode;
        size_t best = 0;
        for (const auto& [code, count] : votes) {
          if (count > best) {
            best = count;
            winner = code;
          }
        }
        categorical_fills.push_back({r, c, winner});
      }
    }
  }
  for (const NumericFill& f : numeric_fills)
    data.mutable_column(f.col).numeric[f.row] = f.value;
  for (const CategoricalFill& f : categorical_fills)
    data.mutable_column(f.col).codes[f.row] = f.code;
  return Status::OK();
}

Status IterativeImpute(TabularDataset& data,
                       const IterativeImputeOptions& options) {
  const size_t n = data.NumRows();
  std::vector<size_t> numeric_cols = data.ColumnsOfType(ColumnType::kNumerical);
  if (numeric_cols.size() < 2) {
    return SimpleImpute(data);  // nothing to regress against
  }

  // Remember which cells were originally missing; mode/mean-initialize all.
  std::vector<std::vector<bool>> missing(numeric_cols.size(),
                                         std::vector<bool>(n, false));
  for (size_t idx = 0; idx < numeric_cols.size(); ++idx) {
    const Column& col = data.column(numeric_cols[idx]);
    for (size_t r = 0; r < n; ++r) missing[idx][r] = col.IsMissing(r);
  }
  GNN4TDL_RETURN_IF_ERROR(SimpleImpute(data));

  const size_t d = numeric_cols.size();
  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    double max_change = 0.0;
    for (size_t idx = 0; idx < d; ++idx) {
      Column& target = data.mutable_column(numeric_cols[idx]);
      // Predictors: all other numeric columns plus an intercept.
      std::vector<size_t> train_rows, fill_rows;
      for (size_t r = 0; r < n; ++r)
        (missing[idx][r] ? fill_rows : train_rows).push_back(r);
      if (fill_rows.empty() || train_rows.size() < d + 1) continue;

      auto build_x = [&](const std::vector<size_t>& rows) {
        Matrix x(rows.size(), d);  // d-1 predictors + intercept
        for (size_t i = 0; i < rows.size(); ++i) {
          size_t out_col = 0;
          for (size_t other = 0; other < d; ++other) {
            if (other == idx) continue;
            x(i, out_col++) = data.column(numeric_cols[other]).numeric[rows[i]];
          }
          x(i, d - 1) = 1.0;  // intercept
        }
        return x;
      };
      Matrix x_train = build_x(train_rows);
      Matrix y_train(train_rows.size(), 1);
      for (size_t i = 0; i < train_rows.size(); ++i)
        y_train(i, 0) = target.numeric[train_rows[i]];

      StatusOr<Matrix> w = SolveRidge(x_train, y_train, options.ridge_lambda);
      if (!w.ok()) continue;  // skip degenerate columns this round

      Matrix x_fill = build_x(fill_rows);
      Matrix pred = x_fill.Matmul(*w);
      for (size_t i = 0; i < fill_rows.size(); ++i) {
        double& cell = target.numeric[fill_rows[i]];
        max_change = std::max(max_change, std::fabs(cell - pred(i, 0)));
        cell = pred(i, 0);
      }
    }
    if (max_change < options.tolerance) break;
  }
  return Status::OK();
}

std::vector<HeldOutCell> HideNumericCells(TabularDataset& data, double rate,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<HeldOutCell> cells;
  for (size_t c : data.ColumnsOfType(ColumnType::kNumerical)) {
    Column& col = data.mutable_column(c);
    for (size_t r = 0; r < data.NumRows(); ++r) {
      if (std::isnan(col.numeric[r])) continue;
      if (rng.Bernoulli(rate)) {
        cells.push_back({r, c, col.numeric[r]});
        col.numeric[r] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  return cells;
}

StatusOr<double> ImputationRmse(const TabularDataset& imputed,
                                const std::vector<HeldOutCell>& cells) {
  if (cells.empty()) return Status::InvalidArgument("no held-out cells");

  // Per-column truth std for scale-free aggregation.
  std::map<size_t, std::pair<double, double>> col_moments;  // sum, sum_sq
  std::map<size_t, size_t> col_counts;
  for (const HeldOutCell& cell : cells) {
    col_moments[cell.col].first += cell.truth;
    col_moments[cell.col].second += cell.truth * cell.truth;
    col_counts[cell.col]++;
  }
  std::map<size_t, double> col_std;
  for (const auto& [c, m] : col_moments) {
    double count = static_cast<double>(col_counts[c]);
    double mean = m.first / count;
    double var = m.second / count - mean * mean;
    col_std[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  double sum = 0.0;
  for (const HeldOutCell& cell : cells) {
    if (cell.col >= imputed.NumCols() || cell.row >= imputed.NumRows()) {
      return Status::OutOfRange("held-out cell outside the dataset");
    }
    const Column& col = imputed.column(cell.col);
    if (col.type != ColumnType::kNumerical) {
      return Status::InvalidArgument("held-out cell in non-numeric column");
    }
    double v = col.numeric[cell.row];
    if (std::isnan(v)) {
      return Status::FailedPrecondition("cell still missing after imputation");
    }
    double err = (v - cell.truth) / col_std[cell.col];
    sum += err * err;
  }
  return std::sqrt(sum / static_cast<double>(cells.size()));
}

}  // namespace gnn4tdl
