#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "data/tabular.h"

namespace gnn4tdl {

/// Options for ReadCsv.
struct CsvReadOptions {
  char delimiter = ',';
  /// Name of the label column ("" = unlabeled dataset).
  std::string label_column;
  /// Treat the label as regression targets instead of class labels.
  bool regression_label = false;
  /// Columns to force categorical (others are inferred: a column whose cells
  /// all parse as numbers is numerical, otherwise categorical).
  std::vector<std::string> categorical_columns;
  /// Cell values treated as missing.
  std::vector<std::string> missing_markers = {"", "NA", "NaN", "nan", "?"};
};

/// Parses a CSV file with a header row into a TabularDataset. Categorical
/// codes are assigned in order of first appearance.
StatusOr<TabularDataset> ReadCsv(const std::string& path,
                                 const CsvReadOptions& options = {});

/// Writes `data` (features + label column "label" if present) as CSV.
Status WriteCsv(const TabularDataset& data, const std::string& path);

}  // namespace gnn4tdl
