#include "data/tabular.h"

namespace gnn4tdl {

const char* TaskTypeName(TaskType t) {
  switch (t) {
    case TaskType::kBinaryClassification:
      return "binary_classification";
    case TaskType::kMultiClassification:
      return "multi_classification";
    case TaskType::kRegression:
      return "regression";
    case TaskType::kAnomalyDetection:
      return "anomaly_detection";
    case TaskType::kNone:
      return "none";
  }
  return "unknown";
}

Status TabularDataset::AddNumericColumn(std::string name,
                                        std::vector<double> values) {
  if (values.size() != num_rows_) {
    return Status::InvalidArgument("column '" + name + "' has " +
                                   std::to_string(values.size()) +
                                   " values, dataset has " +
                                   std::to_string(num_rows_) + " rows");
  }
  Column col;
  col.name = std::move(name);
  col.type = ColumnType::kNumerical;
  col.numeric = std::move(values);
  columns_.push_back(std::move(col));
  return Status::OK();
}

Status TabularDataset::AddCategoricalColumn(std::string name,
                                            std::vector<int> codes,
                                            std::vector<std::string> categories) {
  if (codes.size() != num_rows_) {
    return Status::InvalidArgument("column '" + name + "' has " +
                                   std::to_string(codes.size()) +
                                   " codes, dataset has " +
                                   std::to_string(num_rows_) + " rows");
  }
  for (int c : codes) {
    if (c >= static_cast<int>(categories.size())) {
      return Status::InvalidArgument("column '" + name + "' has code " +
                                     std::to_string(c) + " >= cardinality " +
                                     std::to_string(categories.size()));
    }
  }
  Column col;
  col.name = std::move(name);
  col.type = ColumnType::kCategorical;
  col.codes = std::move(codes);
  col.categories = std::move(categories);
  columns_.push_back(std::move(col));
  return Status::OK();
}

StatusOr<size_t> TabularDataset::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].name == name) return i;
  return Status::NotFound("no column named '" + name + "'");
}

std::vector<size_t> TabularDataset::ColumnsOfType(ColumnType type) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].type == type) out.push_back(i);
  return out;
}

Status TabularDataset::SetClassLabels(std::vector<int> labels, int num_classes,
                                      TaskType task) {
  if (labels.size() != num_rows_) {
    return Status::InvalidArgument("label count does not match row count");
  }
  if (task != TaskType::kBinaryClassification &&
      task != TaskType::kMultiClassification &&
      task != TaskType::kAnomalyDetection) {
    return Status::InvalidArgument("SetClassLabels requires a classification task");
  }
  for (int y : labels) {
    if (y < 0 || y >= num_classes) {
      return Status::InvalidArgument("label " + std::to_string(y) +
                                     " outside [0, " +
                                     std::to_string(num_classes) + ")");
    }
  }
  class_labels_ = std::move(labels);
  num_classes_ = num_classes;
  task_ = task;
  return Status::OK();
}

Status TabularDataset::SetRegressionLabels(std::vector<double> labels) {
  if (labels.size() != num_rows_) {
    return Status::InvalidArgument("label count does not match row count");
  }
  regression_labels_ = std::move(labels);
  task_ = TaskType::kRegression;
  return Status::OK();
}

Matrix TabularDataset::RegressionLabelMatrix() const {
  GNN4TDL_CHECK_EQ(regression_labels_.size(), num_rows_);
  Matrix y(num_rows_, 1);
  for (size_t i = 0; i < num_rows_; ++i) y(i, 0) = regression_labels_[i];
  return y;
}

double TabularDataset::MissingFraction() const {
  if (num_rows_ == 0 || columns_.empty()) return 0.0;
  size_t missing = 0;
  for (const Column& col : columns_)
    for (size_t r = 0; r < num_rows_; ++r)
      if (col.IsMissing(r)) ++missing;
  return static_cast<double>(missing) /
         static_cast<double>(num_rows_ * columns_.size());
}

}  // namespace gnn4tdl
