#include "data/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gnn4tdl {

namespace {

std::vector<size_t> AllRowsIfEmpty(const std::vector<size_t>& rows, size_t n) {
  if (!rows.empty()) return rows;
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  return all;
}

}  // namespace

double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<size_t>& rows) {
  GNN4TDL_CHECK_EQ(logits.rows(), labels.size());
  std::vector<size_t> eval = AllRowsIfEmpty(rows, logits.rows());
  if (eval.empty()) return 0.0;
  size_t correct = 0;
  for (size_t r : eval)
    if (static_cast<int>(logits.ArgMaxRow(r)) == labels[r]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(eval.size());
}

double Auroc(const std::vector<double>& scores, const std::vector<int>& labels,
             const std::vector<size_t>& rows) {
  GNN4TDL_CHECK_EQ(scores.size(), labels.size());
  std::vector<size_t> eval = AllRowsIfEmpty(rows, scores.size());

  // Midrank-based AUROC: AUC = (sum of positive ranks - P(P+1)/2) / (P * N).
  std::vector<size_t> order = eval;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  std::vector<double> rank(order.size());
  for (size_t i = 0; i < order.size();) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    double mid = 0.5 * static_cast<double>(i + j - 1) + 1.0;  // 1-based midrank
    for (size_t k = i; k < j; ++k) rank[k] = mid;
    i = j;
  }

  double pos = 0.0, neg = 0.0, pos_rank_sum = 0.0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] == 1) {
      pos += 1.0;
      pos_rank_sum += rank[i];
    } else {
      neg += 1.0;
    }
  }
  if (pos == 0.0 || neg == 0.0) return 0.5;
  return (pos_rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

double MacroF1(const Matrix& logits, const std::vector<int>& labels,
               int num_classes, const std::vector<size_t>& rows) {
  GNN4TDL_CHECK_EQ(logits.rows(), labels.size());
  std::vector<size_t> eval = AllRowsIfEmpty(rows, logits.rows());
  std::vector<double> tp(static_cast<size_t>(num_classes), 0.0);
  std::vector<double> fp(static_cast<size_t>(num_classes), 0.0);
  std::vector<double> fn(static_cast<size_t>(num_classes), 0.0);
  std::vector<bool> present(static_cast<size_t>(num_classes), false);
  for (size_t r : eval) {
    int pred = static_cast<int>(logits.ArgMaxRow(r));
    int truth = labels[r];
    present[static_cast<size_t>(truth)] = true;
    if (pred == truth) {
      tp[static_cast<size_t>(truth)] += 1.0;
    } else {
      fp[static_cast<size_t>(pred)] += 1.0;
      fn[static_cast<size_t>(truth)] += 1.0;
    }
  }
  double f1_sum = 0.0;
  int classes = 0;
  for (int c = 0; c < num_classes; ++c) {
    size_t ci = static_cast<size_t>(c);
    if (!present[ci]) continue;
    double denom = 2.0 * tp[ci] + fp[ci] + fn[ci];
    f1_sum += denom > 0.0 ? 2.0 * tp[ci] / denom : 0.0;
    ++classes;
  }
  return classes > 0 ? f1_sum / classes : 0.0;
}

double Rmse(const Matrix& pred, const std::vector<double>& targets,
            const std::vector<size_t>& rows) {
  GNN4TDL_CHECK_EQ(pred.rows(), targets.size());
  GNN4TDL_CHECK_EQ(pred.cols(), 1u);
  std::vector<size_t> eval = AllRowsIfEmpty(rows, pred.rows());
  if (eval.empty()) return 0.0;
  double sum = 0.0;
  for (size_t r : eval) {
    double d = pred(r, 0) - targets[r];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(eval.size()));
}

double Mae(const Matrix& pred, const std::vector<double>& targets,
           const std::vector<size_t>& rows) {
  GNN4TDL_CHECK_EQ(pred.rows(), targets.size());
  GNN4TDL_CHECK_EQ(pred.cols(), 1u);
  std::vector<size_t> eval = AllRowsIfEmpty(rows, pred.rows());
  if (eval.empty()) return 0.0;
  double sum = 0.0;
  for (size_t r : eval) sum += std::fabs(pred(r, 0) - targets[r]);
  return sum / static_cast<double>(eval.size());
}

double R2(const Matrix& pred, const std::vector<double>& targets,
          const std::vector<size_t>& rows) {
  GNN4TDL_CHECK_EQ(pred.rows(), targets.size());
  std::vector<size_t> eval = AllRowsIfEmpty(rows, pred.rows());
  if (eval.empty()) return 0.0;
  double mean = 0.0;
  for (size_t r : eval) mean += targets[r];
  mean /= static_cast<double>(eval.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t r : eval) {
    double d = pred(r, 0) - targets[r];
    ss_res += d * d;
    double t = targets[r] - mean;
    ss_tot += t * t;
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Matrix ConfusionMatrix(const Matrix& logits, const std::vector<int>& labels,
                       int num_classes, const std::vector<size_t>& rows) {
  GNN4TDL_CHECK_EQ(logits.rows(), labels.size());
  GNN4TDL_CHECK_GT(num_classes, 0);
  std::vector<size_t> eval = AllRowsIfEmpty(rows, logits.rows());
  Matrix cm(static_cast<size_t>(num_classes), static_cast<size_t>(num_classes));
  for (size_t r : eval) {
    int truth = labels[r];
    int pred = static_cast<int>(logits.ArgMaxRow(r));
    GNN4TDL_CHECK_GE(truth, 0);
    GNN4TDL_CHECK_LT(truth, num_classes);
    GNN4TDL_CHECK_LT(pred, num_classes);
    cm(static_cast<size_t>(truth), static_cast<size_t>(pred)) += 1.0;
  }
  return cm;
}

std::vector<double> PositiveClassScores(const Matrix& logits) {
  GNN4TDL_CHECK(logits.cols() == 1 || logits.cols() == 2);
  std::vector<double> scores(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    if (logits.cols() == 1) {
      scores[r] = 1.0 / (1.0 + std::exp(-logits(r, 0)));
    } else {
      // Softmax positive-class probability; stable via the logit difference.
      double diff = logits(r, 1) - logits(r, 0);
      scores[r] = 1.0 / (1.0 + std::exp(-diff));
    }
  }
  return scores;
}

}  // namespace gnn4tdl
