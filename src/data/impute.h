#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/tabular.h"

namespace gnn4tdl {

// Classical missing-data imputers (Section 5.4's baselines). Each fills the
// missing cells of a TabularDataset in place; labels are untouched. The GNN
// alternative (GRAPE) lives in models/bipartite_imputer.h.

/// Column-statistic imputation: numeric columns get the mean (or median),
/// categorical columns the most frequent value.
enum class SimpleImputeStrategy { kMean, kMedian };
Status SimpleImpute(TabularDataset& data,
                    SimpleImputeStrategy strategy = SimpleImputeStrategy::kMean);

/// kNN imputation: each incomplete row copies the mean (numeric) / majority
/// (categorical) of its k nearest rows, with distances computed over the
/// columns both rows observe (scaled by per-column std).
struct KnnImputeOptions {
  size_t k = 10;
};
Status KnnImpute(TabularDataset& data, const KnnImputeOptions& options = {});

/// Iterative ridge imputation (MICE-lite): initialize with means, then
/// repeatedly regress each numeric column on all the others and overwrite its
/// missing entries with the regression predictions, until convergence.
/// Categorical columns are mode-imputed up front.
struct IterativeImputeOptions {
  size_t max_iters = 10;
  double ridge_lambda = 1.0;
  double tolerance = 1e-4;  // stop when max cell change drops below this
};
Status IterativeImpute(TabularDataset& data,
                       const IterativeImputeOptions& options = {});

/// A hidden ground-truth cell (numeric columns only).
struct HeldOutCell {
  size_t row;
  size_t col;
  double truth;
};

/// Hides ~`rate` of the observed numeric cells of `data` (sets them NaN) and
/// returns the ground truth for scoring. Deterministic in `seed`.
std::vector<HeldOutCell> HideNumericCells(TabularDataset& data, double rate,
                                          uint64_t seed);

/// RMSE of imputed values against held-out truth, with each column's error
/// scaled by the truth column's std (so columns are comparable). `imputed`
/// must have the same shape as the dataset the cells were hidden from.
StatusOr<double> ImputationRmse(const TabularDataset& imputed,
                                const std::vector<HeldOutCell>& cells);

}  // namespace gnn4tdl
