#include "data/csv.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

namespace gnn4tdl {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, delim)) cells.push_back(cell);
  // Trailing delimiter yields one more empty cell.
  if (!line.empty() && line.back() == delim) cells.push_back("");
  return cells;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

StatusOr<TabularDataset> ReadCsv(const std::string& path,
                                 const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");

  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> header = SplitLine(line, options.delimiter);
  const size_t num_cols = header.size();
  if (num_cols == 0) return Status::IoError("no columns in header");

  std::vector<std::vector<std::string>> cells(num_cols);
  size_t num_rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> row = SplitLine(line, options.delimiter);
    if (row.size() != num_cols) {
      return Status::IoError("row " + std::to_string(num_rows + 2) + " has " +
                             std::to_string(row.size()) + " cells, expected " +
                             std::to_string(num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) cells[c].push_back(std::move(row[c]));
    ++num_rows;
  }

  auto is_missing = [&](const std::string& s) {
    return std::find(options.missing_markers.begin(),
                     options.missing_markers.end(),
                     s) != options.missing_markers.end();
  };
  auto forced_categorical = [&](const std::string& name) {
    return std::find(options.categorical_columns.begin(),
                     options.categorical_columns.end(),
                     name) != options.categorical_columns.end();
  };

  TabularDataset data(num_rows);
  std::vector<int> class_labels;
  std::vector<double> reg_labels;
  int max_label = -1;
  bool has_label = false;

  for (size_t c = 0; c < num_cols; ++c) {
    const bool is_label = !options.label_column.empty() &&
                          header[c] == options.label_column;
    // Infer type: numerical iff all non-missing cells parse as doubles.
    bool numeric = !forced_categorical(header[c]);
    if (numeric) {
      for (const std::string& s : cells[c]) {
        double v;
        if (!is_missing(s) && !ParseDouble(s, &v)) {
          numeric = false;
          break;
        }
      }
    }

    if (is_label) {
      has_label = true;
      if (options.regression_label) {
        reg_labels.resize(num_rows);
        for (size_t r = 0; r < num_rows; ++r) {
          double v;
          if (!ParseDouble(cells[c][r], &v)) {
            return Status::IoError("non-numeric regression label at row " +
                                   std::to_string(r + 2));
          }
          reg_labels[r] = v;
        }
      } else {
        class_labels.resize(num_rows);
        std::map<std::string, int> label_codes;
        for (size_t r = 0; r < num_rows; ++r) {
          const std::string& s = cells[c][r];
          double v;
          int y;
          if (numeric && ParseDouble(s, &v)) {
            y = static_cast<int>(v);
          } else {
            auto [it, inserted] =
                label_codes.emplace(s, static_cast<int>(label_codes.size()));
            (void)inserted;
            y = it->second;
          }
          if (y < 0) return Status::IoError("negative class label");
          class_labels[r] = y;
          max_label = std::max(max_label, y);
        }
      }
      continue;
    }

    if (numeric) {
      std::vector<double> values(num_rows);
      for (size_t r = 0; r < num_rows; ++r) {
        if (is_missing(cells[c][r])) {
          values[r] = std::numeric_limits<double>::quiet_NaN();
        } else {
          ParseDouble(cells[c][r], &values[r]);
        }
      }
      GNN4TDL_RETURN_IF_ERROR(data.AddNumericColumn(header[c], std::move(values)));
    } else {
      std::map<std::string, int> codes_map;
      std::vector<int> codes(num_rows);
      std::vector<std::string> categories;
      for (size_t r = 0; r < num_rows; ++r) {
        const std::string& s = cells[c][r];
        if (is_missing(s)) {
          codes[r] = -1;
          continue;
        }
        auto it = codes_map.find(s);
        if (it == codes_map.end()) {
          it = codes_map.emplace(s, static_cast<int>(categories.size())).first;
          categories.push_back(s);
        }
        codes[r] = it->second;
      }
      GNN4TDL_RETURN_IF_ERROR(data.AddCategoricalColumn(
          header[c], std::move(codes), std::move(categories)));
    }
  }

  if (has_label) {
    if (options.regression_label) {
      GNN4TDL_RETURN_IF_ERROR(data.SetRegressionLabels(std::move(reg_labels)));
    } else {
      int num_classes = max_label + 1;
      GNN4TDL_RETURN_IF_ERROR(data.SetClassLabels(
          std::move(class_labels), num_classes,
          num_classes == 2 ? TaskType::kBinaryClassification
                           : TaskType::kMultiClassification));
    }
  } else if (!options.label_column.empty()) {
    return Status::NotFound("label column '" + options.label_column +
                            "' not in header");
  }
  return data;
}

Status WriteCsv(const TabularDataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");

  const bool has_class = !data.class_labels().empty();
  const bool has_reg = !data.regression_labels().empty();

  for (size_t c = 0; c < data.NumCols(); ++c) {
    if (c > 0) out << ',';
    out << data.column(c).name;
  }
  if (has_class || has_reg) {
    if (data.NumCols() > 0) out << ',';
    out << "label";
  }
  out << '\n';

  for (size_t r = 0; r < data.NumRows(); ++r) {
    for (size_t c = 0; c < data.NumCols(); ++c) {
      if (c > 0) out << ',';
      const Column& col = data.column(c);
      if (col.IsMissing(r)) continue;  // empty cell
      if (col.type == ColumnType::kNumerical) {
        out << col.numeric[r];
      } else {
        out << col.categories[static_cast<size_t>(col.codes[r])];
      }
    }
    if (has_class) {
      if (data.NumCols() > 0) out << ',';
      out << data.class_labels()[r];
    } else if (has_reg) {
      if (data.NumCols() > 0) out << ',';
      out << data.regression_labels()[r];
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace gnn4tdl
