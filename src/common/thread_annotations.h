#pragma once

// Compile-time lock-discipline vocabulary. Every macro maps to a Clang
// thread-safety attribute when the compiler supports them and expands to
// nothing otherwise, so annotated code builds identically under gcc while a
// clang `-Wthread-safety` pass (tools/check.sh `analyze` stage) can prove
// lock invariants statically. The same annotations are parsed textually by
// the gnn4tdl_lint lock-discipline pass, which enforces a subset of the
// discipline on *any* compiler — see docs/STATIC_ANALYSIS.md.
//
// Vocabulary (mirrors the Clang/abseil convention):
//   GNN4TDL_CAPABILITY(name)    class is a lockable capability (our Mutex)
//   GNN4TDL_SCOPED_CAPABILITY   RAII class that acquires on construction and
//                               releases on destruction (our MutexLock)
//   GNN4TDL_GUARDED_BY(mu)      field may only be touched while mu is held
//   GNN4TDL_PT_GUARDED_BY(mu)   pointee may only be touched while mu is held
//   GNN4TDL_REQUIRES(mu...)     caller must already hold mu (the *Locked
//                               method convention; never on public methods)
//   GNN4TDL_EXCLUDES(mu...)     caller must NOT hold mu (the method acquires
//                               it itself; documents deadlock hazards)
//   GNN4TDL_ACQUIRE(mu...)      function acquires mu and does not release it
//   GNN4TDL_RELEASE(mu...)      function releases mu
//   GNN4TDL_TRY_ACQUIRE(b, mu...) try-lock: acquires iff it returns `b`
//   GNN4TDL_ASSERT_CAPABILITY(mu) runtime assertion that mu is held
//   GNN4TDL_RETURN_CAPABILITY(mu) function returns a reference to mu
//   GNN4TDL_NO_THREAD_SAFETY_ANALYSIS  opt a function out (last resort;
//                               pair with a comment explaining why)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GNN4TDL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GNN4TDL_THREAD_ANNOTATION
#define GNN4TDL_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define GNN4TDL_CAPABILITY(x) GNN4TDL_THREAD_ANNOTATION(capability(x))
#define GNN4TDL_SCOPED_CAPABILITY GNN4TDL_THREAD_ANNOTATION(scoped_lockable)
#define GNN4TDL_GUARDED_BY(x) GNN4TDL_THREAD_ANNOTATION(guarded_by(x))
#define GNN4TDL_PT_GUARDED_BY(x) GNN4TDL_THREAD_ANNOTATION(pt_guarded_by(x))
#define GNN4TDL_REQUIRES(...) \
  GNN4TDL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GNN4TDL_EXCLUDES(...) \
  GNN4TDL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GNN4TDL_ACQUIRE(...) \
  GNN4TDL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GNN4TDL_RELEASE(...) \
  GNN4TDL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GNN4TDL_TRY_ACQUIRE(...) \
  GNN4TDL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GNN4TDL_ASSERT_CAPABILITY(x) \
  GNN4TDL_THREAD_ANNOTATION(assert_capability(x))
#define GNN4TDL_RETURN_CAPABILITY(x) \
  GNN4TDL_THREAD_ANNOTATION(lock_returned(x))
#define GNN4TDL_NO_THREAD_SAFETY_ANALYSIS \
  GNN4TDL_THREAD_ANNOTATION(no_thread_safety_analysis)
