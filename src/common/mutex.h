#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace gnn4tdl {

/// Annotated mutex: a thin wrapper over std::mutex carrying the Clang
/// `capability` attribute, so GNN4TDL_GUARDED_BY / GNN4TDL_REQUIRES
/// annotations referencing it type-check under `-Wthread-safety`
/// (libstdc++'s std::mutex carries no capability annotations, which is why
/// the project uses this type instead — the gnn4tdl_lint lock pass bans raw
/// std::mutex members outside this header).
///
/// Method names satisfy BasicLockable, so std::condition_variable_any can
/// wait on a Mutex directly. Project code never calls lock()/unlock() by
/// hand: acquisition goes through MutexLock so every critical section is
/// scoped and exception-safe.
class GNN4TDL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GNN4TDL_ACQUIRE() { mu_.lock(); }
  void unlock() GNN4TDL_RELEASE() { mu_.unlock(); }
  bool try_lock() GNN4TDL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over a Mutex (scoped capability): acquires on
/// construction, releases on destruction. The annotated replacement for
/// std::lock_guard — under clang, field accesses guarded by the mutex are
/// only accepted while one of these is alive in the enclosing scope.
class GNN4TDL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GNN4TDL_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() GNN4TDL_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The held mutex; CondVar waits release and reacquire it.
  Mutex* mutex() { return mu_; }

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Waits take the active MutexLock:
/// the underlying condition_variable_any releases the mutex while blocked
/// and reacquires it before returning, so from the caller's (and the static
/// analyzer's) point of view the capability is held continuously across the
/// wait. No predicate overloads on purpose — callers write explicit
///   while (!condition) cv.Wait(lock);
/// loops, which keeps guarded reads inside a function the analysis can see
/// (a predicate lambda would be a separate, unannotated function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); reacquires before return.
  void Wait(MutexLock& lock) { cv_.wait(*lock.mutex()); }

  /// Blocks for at most `ns` nanoseconds; reacquires before return. The
  /// relative wait deliberately mirrors the engine's recompute-remaining
  /// pattern, which keeps deadline logic correct under an obs::FakeClock.
  void WaitForNanos(MutexLock& lock, int64_t ns) {
    cv_.wait_for(*lock.mutex(), std::chrono::nanoseconds(ns));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace gnn4tdl
