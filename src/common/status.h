#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gnn4tdl {

/// Error categories used across the library. Mirrors the small set of
/// conditions a tabular-learning pipeline can hit; extend sparingly.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIoError = 7,
  /// A bounded resource (serving queue, admission budget) is full. Callers
  /// treat this as backpressure — retry later or shed load — never as a bug.
  kResourceExhausted = 8,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation. Cheap to copy when OK (no allocation).
///
/// Usage follows the RocksDB/Arrow idiom:
///
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class-level [[nodiscard]] makes silently dropping any Status a
/// compile-time warning (promoted to an error by -Werror=unused-result) and a
/// gnn4tdl_lint violation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define GNN4TDL_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::gnn4tdl::Status _status = (expr);            \
    if (!_status.ok()) return _status;             \
  } while (false)

}  // namespace gnn4tdl
