#include "common/rng.h"

#include "common/check.h"

namespace gnn4tdl {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::Int(int64_t lo, int64_t hi) {
  GNN4TDL_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  GNN4TDL_CHECK(!weights.empty());
  std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GNN4TDL_CHECK_LE(k, n);
  std::vector<size_t> perm = Permutation(n);
  perm.resize(k);
  return perm;
}

}  // namespace gnn4tdl
