#pragma once

#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These fire on programmer error (shape mismatch,
/// index out of bounds), not on bad user input — user input goes through
/// Status-returning APIs. Enabled in all build types: the library's data sizes
/// are small enough that the cost is negligible, and silent corruption in a
/// numerics library is far worse than an abort.
#define GNN4TDL_CHECK(cond)                                                    \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(/* lint:stderr(process is aborting) */ stderr,              \
                   "GNN4TDL_CHECK failed at %s:%d: %s\n", __FILE__,            \
                   __LINE__, #cond);                                           \
      std::abort();                                                            \
    }                                                                          \
  } while (false)

#define GNN4TDL_CHECK_MSG(cond, msg)                                           \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(/* lint:stderr(process is aborting) */ stderr,              \
                   "GNN4TDL_CHECK failed at %s:%d: %s (%s)\n",                 \
                   __FILE__, __LINE__, #cond, msg);                            \
      std::abort();                                                            \
    }                                                                          \
  } while (false)

#define GNN4TDL_CHECK_EQ(a, b) GNN4TDL_CHECK((a) == (b))
#define GNN4TDL_CHECK_LT(a, b) GNN4TDL_CHECK((a) < (b))
#define GNN4TDL_CHECK_LE(a, b) GNN4TDL_CHECK((a) <= (b))
#define GNN4TDL_CHECK_GT(a, b) GNN4TDL_CHECK((a) > (b))
#define GNN4TDL_CHECK_GE(a, b) GNN4TDL_CHECK((a) >= (b))
