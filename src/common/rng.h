#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace gnn4tdl {

/// Deterministic random number generator. Every stochastic component in the
/// library takes an explicit Rng (or a seed) so that experiments are
/// reproducible bit-for-bit; there is no hidden global generator.
class Rng {
 public:
  /// Seeds the underlying mt19937_64 engine.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (or N(mean, stddev^2)) sample.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Int(int64_t lo, int64_t hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Sample from {0,...,weights.size()-1} proportionally to `weights`
  /// (non-negative, not all zero).
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Int(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0,...,n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// `k` distinct indices sampled uniformly from {0,...,n-1}, k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Direct access for std::distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gnn4tdl
