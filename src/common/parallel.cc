#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/check.h"

namespace gnn4tdl {

namespace {

// Load-balance factor for plain loops: more chunks than threads so a slow
// chunk does not leave the other lanes idle. Reductions use exactly
// num_threads chunks instead (fewer partials to store and combine).
constexpr size_t kChunksPerThread = 4;

// Set while any thread executes a ParallelFor/reduction body; used to reject
// nested parallelism (kernels must stay leaf-level, see parallel.h).
thread_local bool tl_in_parallel_region = false;

class ParallelRegionScope {
 public:
  ParallelRegionScope() { tl_in_parallel_region = true; }
  ~ParallelRegionScope() { tl_in_parallel_region = false; }
};

void RejectNested(const char* what) {
  if (tl_in_parallel_region) {
    throw std::logic_error(std::string(what) +
                           ": nested parallel regions are not supported; "
                           "kernels must be leaf-level");
  }
}

// Runs body(range) for every range, either inline (single range or serial
// pool) or on the global pool, with the nested-region guard active in every
// executing thread.
void RunRanges(const std::vector<Range>& ranges,
               const std::function<void(size_t, const Range&)>& body) {
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    ParallelRegionScope scope;
    body(0, ranges[0]);
    return;
  }
  ThreadPool::Global().Run(ranges.size(), [&](size_t chunk) {
    body(chunk, ranges[chunk]);
  });
}

}  // namespace

bool InParallelRegion() { return tl_in_parallel_region; }

size_t ThreadCountFromEnv() {
  const char* env = std::getenv("GNN4TDL_THREADS");
  size_t n = 0;
  if (env == nullptr || *env == '\0') {
    n = std::thread::hardware_concurrency();
  } else {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(env, &end, 10);
    n = (end != nullptr && *end == '\0') ? static_cast<size_t>(parsed) : 1;
  }
  return std::min<size_t>(std::max<size_t>(n, 1), 256);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(ThreadCountFromEnv());
  return pool;
}

ThreadPool::ThreadPool(size_t num_threads) {
  MutexLock run_lock(&run_mu_);
  StartWorkers(std::max<size_t>(num_threads, 1) - 1);
}

ThreadPool::~ThreadPool() {
  MutexLock run_lock(&run_mu_);
  StopWorkers();
}

void ThreadPool::SetNumThreads(size_t n) {
  MutexLock run_lock(&run_mu_);
  StopWorkers();
  StartWorkers(std::max<size_t>(n, 1) - 1);
}

void ThreadPool::StartWorkers(size_t num_workers) {
  {
    MutexLock lock(&mu_);
    shutdown_ = false;
  }
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  num_threads_.store(num_workers + 1, std::memory_order_relaxed);
}

void ThreadPool::StopWorkers() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  num_threads_.store(1, std::memory_order_relaxed);
}

bool ThreadPool::NextChunk(size_t* chunk,
                           const std::function<void(size_t)>** fn) {
  MutexLock lock(&mu_);
  if (job_fn_ == nullptr || job_next_chunk_ >= job_num_chunks_) return false;
  *chunk = job_next_chunk_++;
  *fn = job_fn_;
  return true;
}

void ThreadPool::FinishChunk() {
  bool last = false;
  {
    MutexLock lock(&mu_);
    GNN4TDL_CHECK_GT(job_pending_chunks_, 0u);
    last = --job_pending_chunks_ == 0;
  }
  if (last) done_cv_.NotifyAll();
}

void ThreadPool::RunChunk(size_t chunk, const std::function<void(size_t)>& fn) {
  try {
    ParallelRegionScope scope;
    // Parent spans opened inside the chunk under the submitter's span.
    // job_trace_parent_ is written under mu_ before dispatch and read here
    // after NextChunk's mu_ acquisition, so the read is ordered.
    obs::TraceAmbientParent trace_parent(job_trace_parent_);
    fn(chunk);
  } catch (...) {
    MutexLock lock(&mu_);
    if (!job_error_) job_error_ = std::current_exception();
    // Cancel the chunks nobody has started yet; pending_chunks_ was already
    // debited for them, so the caller's wait still terminates.
    job_pending_chunks_ -= job_num_chunks_ - job_next_chunk_;
    job_next_chunk_ = job_num_chunks_;
  }
  FinishChunk();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(&mu_);
      // Explicit wait loop (not a predicate lambda) so the guarded reads sit
      // in this function, where the thread-safety analysis can see the lock.
      while (!(shutdown_ ||
               (job_fn_ != nullptr && job_generation_ != seen_generation &&
                job_next_chunk_ < job_num_chunks_))) {
        work_cv_.Wait(lock);
      }
      if (shutdown_) return;
      seen_generation = job_generation_;
    }
    size_t chunk = 0;
    const std::function<void(size_t)>* fn = nullptr;
    while (NextChunk(&chunk, &fn)) RunChunk(chunk, *fn);
  }
}

void ThreadPool::Run(size_t num_chunks,
                     const std::function<void(size_t)>& chunk_fn) {
  if (num_chunks == 0) return;
  // Rejecting nesting here (not just in ParallelFor) matters for liveness: a
  // chunk body that re-entered Run would deadlock on run_mu_, which its own
  // caller holds for the duration of the outer job.
  RejectNested("ThreadPool::Run");
  MutexLock run_lock(&run_mu_);
  if (workers_.empty() || num_chunks == 1) {
    // Serial fallback: run inline with the guard active; exceptions
    // propagate directly.
    ParallelRegionScope scope;
    for (size_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }

  {
    MutexLock lock(&mu_);
    job_fn_ = &chunk_fn;
    job_num_chunks_ = num_chunks;
    job_next_chunk_ = 0;
    job_pending_chunks_ = num_chunks;
    job_error_ = nullptr;
    job_trace_parent_ = obs::TraceSpan::ActiveId();
    ++job_generation_;
  }
  work_cv_.NotifyAll();

  // The caller is a full lane: it pulls chunks like any worker.
  size_t chunk = 0;
  const std::function<void(size_t)>* fn = nullptr;
  while (NextChunk(&chunk, &fn)) RunChunk(chunk, *fn);

  std::exception_ptr error;
  {
    MutexLock lock(&mu_);
    while (job_pending_chunks_ != 0) done_cv_.Wait(lock);
    job_fn_ = nullptr;
    error = job_error_;
    job_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

std::vector<Range> PartitionRange(size_t begin, size_t end, size_t grain,
                                  size_t max_chunks) {
  GNN4TDL_CHECK_LE(begin, end);
  const size_t n = end - begin;
  if (n == 0) return {};
  const size_t g = std::max<size_t>(grain, 1);
  size_t chunks = std::min(std::max<size_t>(max_chunks, 1), n / g);
  chunks = std::max<size_t>(chunks, 1);
  std::vector<Range> ranges;
  ranges.reserve(chunks);
  const size_t base = n / chunks;
  const size_t rem = n % chunks;
  size_t at = begin;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < rem ? 1 : 0);
    ranges.push_back({at, at + len});
    at += len;
  }
  GNN4TDL_CHECK_EQ(at, end);
  return ranges;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  RejectNested("ParallelFor");
  const size_t threads = ThreadPool::Global().num_threads();
  std::vector<Range> ranges =
      PartitionRange(begin, end, grain, threads * kChunksPerThread);
  RunRanges(ranges, [&](size_t, const Range& r) { body(r.begin, r.end); });
}

double ParallelReduceSum(
    size_t begin, size_t end, size_t grain,
    const std::function<double(size_t, size_t)>& chunk_sum) {
  RejectNested("ParallelReduceSum");
  const size_t threads = ThreadPool::Global().num_threads();
  // Exactly one partial per pool lane: fewer partials to combine and a
  // partition that depends only on the thread count.
  std::vector<Range> ranges = PartitionRange(begin, end, grain, threads);
  if (ranges.empty()) return 0.0;
  std::vector<double> partials(ranges.size(), 0.0);
  RunRanges(ranges, [&](size_t idx, const Range& r) {
    partials[idx] = chunk_sum(r.begin, r.end);
  });
  TreeCombine(partials, [](double& into, double from) { into += from; });
  return partials[0];
}

}  // namespace gnn4tdl
