#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace gnn4tdl {

/// Half-open index range [begin, end) handed to a ParallelFor body or a
/// reduction chunk.
struct Range {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Thread count requested via the GNN4TDL_THREADS environment variable,
/// falling back to std::thread::hardware_concurrency() when unset. Always at
/// least 1; values are clamped to [1, 256] and unparsable strings fall back
/// to 1 (serial). Read once per call — ThreadPool::Global() samples it only
/// at first use.
size_t ThreadCountFromEnv();

/// Fixed-size thread pool with deterministic chunked dispatch — deliberately
/// no work stealing. A job is a number of chunks; workers (plus the caller,
/// which participates) pull chunk indices from a shared cursor under a mutex.
/// Which thread runs which chunk is scheduling-dependent, but every chunk's
/// work is defined purely by its index, so results never depend on the
/// assignment.
///
/// Threading contract:
///  - Run() executes chunk_fn(0..num_chunks-1) and blocks until all chunks
///    finish. Concurrent Run() calls from different threads are serialized.
///  - With num_threads() == 1 (or a single chunk) everything executes inline
///    on the caller — the serial fallback, bit-exact with pre-pool code.
///  - The first exception thrown by a chunk cancels the remaining chunks and
///    is rethrown on the calling thread.
///  - All kernels in tensor/ and nn/ route through the singleton Global()
///    pool, sized by GNN4TDL_THREADS at first use; SetNumThreads() resizes it
///    (tests and the bench sweep only — it must not race with running jobs).
class ThreadPool {
 public:
  /// Process-wide pool shared by every kernel (and the serving engine's
  /// batched forwards). Sized by GNN4TDL_THREADS at first call.
  static ThreadPool& Global();

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const {
    return num_threads_.load(std::memory_order_relaxed);
  }

  /// Joins all workers and respawns `n - 1` of them (the caller is the n-th
  /// lane). Callable only while no job is running.
  void SetNumThreads(size_t n);

  /// Runs chunk_fn(c) for every c in [0, num_chunks), blocking until done.
  void Run(size_t num_chunks, const std::function<void(size_t)>& chunk_fn);

 private:
  void WorkerLoop();
  void StartWorkers(size_t num_workers) GNN4TDL_REQUIRES(run_mu_);
  void StopWorkers() GNN4TDL_REQUIRES(run_mu_);
  // Grabs the next chunk index of the active job; false when drained.
  bool NextChunk(size_t* chunk, const std::function<void(size_t)>** fn)
      GNN4TDL_EXCLUDES(mu_);
  void FinishChunk() GNN4TDL_EXCLUDES(mu_);
  void RunChunk(size_t chunk, const std::function<void(size_t)>& fn);

  // Serializes Run() callers (and SetNumThreads) so at most one job is
  // in flight; the pool is shared but not reentrant.
  Mutex run_mu_;

  // Guards the job state below.
  mutable Mutex mu_;
  CondVar work_cv_;  // workers: new job or shutdown
  CondVar done_cv_;  // caller: all chunks finished
  // Workers are started/joined only by the ctor/dtor and SetNumThreads, all
  // of which hold run_mu_ for the whole start/stop sequence.
  std::vector<std::thread> workers_ GNN4TDL_GUARDED_BY(run_mu_);
  std::atomic<size_t> num_threads_{1};
  bool shutdown_ GNN4TDL_GUARDED_BY(mu_) = false;

  // Active job state. job_fn_ is non-null only while a job is in flight.
  uint64_t job_generation_ GNN4TDL_GUARDED_BY(mu_) = 0;
  const std::function<void(size_t)>* job_fn_ GNN4TDL_GUARDED_BY(mu_) = nullptr;
  size_t job_num_chunks_ GNN4TDL_GUARDED_BY(mu_) = 0;
  size_t job_next_chunk_ GNN4TDL_GUARDED_BY(mu_) = 0;
  size_t job_pending_chunks_ GNN4TDL_GUARDED_BY(mu_) = 0;
  std::exception_ptr job_error_ GNN4TDL_GUARDED_BY(mu_);
  // Trace span open on the submitting thread when the job started; worker
  // lanes parent their spans under it so the span tree crosses the pool.
  // Written under mu_ before dispatch, stable for the job's duration;
  // RunChunk reads it after NextChunk's mu_ acquisition ordered the write.
  uint64_t job_trace_parent_ = 0;  // lint:unguarded(stable for the job's duration; ordered by NextChunk's mu_ acquisition)
};

/// Deterministic partition of [begin, end) into at most `max_chunks` chunks
/// of at least `grain` indices each (the last chunks may be one index
/// larger). Boundaries depend only on the range, grain, and max_chunks —
/// never on scheduling — which is what makes chunked reductions reproducible
/// for a fixed thread count.
std::vector<Range> PartitionRange(size_t begin, size_t end, size_t grain,
                                  size_t max_chunks);

/// Parallel loop: body(chunk_begin, chunk_end) over a deterministic partition
/// of [begin, end) with up to 4 chunks per pool thread (for load balance).
/// The body must only write data disjoint across chunks; under that contract
/// results are bit-exact with serial execution for every thread count.
///
/// Nested ParallelFor (a body that itself calls ParallelFor, on any thread
/// currently inside one) throws std::logic_error — kernels must stay
/// leaf-level. Exceptions thrown by the body propagate to the caller.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Deterministic parallel sum: chunk_sum(b, e) returns the serial sum of its
/// chunk, and the per-chunk partials are combined by a fixed pairwise tree.
/// For a fixed thread count the result is identical across runs; with one
/// chunk (threads=1 or a small range) it equals the serial sum bit-for-bit.
/// Partials are combined in chunk order, so thread counts only differ by
/// floating-point association (observed differences ~1e-15 relative).
double ParallelReduceSum(size_t begin, size_t end, size_t grain,
                         const std::function<double(size_t, size_t)>& chunk_sum);

/// In-place pairwise tree combine of per-chunk partial accumulators:
/// combine(parts[i], parts[i+stride]) folds the right element into the left,
/// strides doubling, leaving the total in parts[0]. Deterministic for a fixed
/// parts.size(). Used by accumulating kernels (SpMM-transpose, edge-softmax)
/// whose partials are whole matrices or per-group arrays.
template <typename T, typename Combine>
void TreeCombine(std::vector<T>& parts, Combine&& combine) {
  for (size_t stride = 1; stride < parts.size(); stride *= 2) {
    for (size_t i = 0; i + stride < parts.size(); i += 2 * stride) {
      combine(parts[i], parts[i + stride]);
    }
  }
}

/// True while the calling thread is inside a ParallelFor/reduction body.
/// Exposed so tests can assert the nested-call guard and kernels can assert
/// they are at leaf level.
bool InParallelRegion();

}  // namespace gnn4tdl
