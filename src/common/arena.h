#pragma once

// Slab arena for tape intermediates (docs/MEMORY.md is the contract).
//
// Training allocates one Matrix per tape op per epoch; glibc malloc handles
// the churn but every buffer is touched twice (zero-fill + compute) and the
// allocator metadata walk shows up in the aggregation-bound profile. The
// arena replaces that with a pow2 size-class freelist: the first epoch is
// the dry-run that sizes the pool (every request is a miss that grows it),
// and steady-state epochs recycle the same slabs with zero new allocations.
//
// Ownership model: Arena owns an ArenaState; every DoubleBuffer checked out
// of it holds a shared_ptr to that state. Buffers that escape the arena's
// lifetime (model parameters updated under an ArenaScope, snapshots) stay
// valid — the state, and with it every slab, lives until the last escapee
// is destroyed. Returning a buffer pushes its slab back on the freelist; it
// is recycled dirty (the next checkout zero-fills or overwrites).
//
// Scoping: ArenaScope installs an arena as the calling thread's allocation
// target; Matrix construction on that thread draws from it. Pool worker
// threads never see a scope (kernels allocate outputs on the calling thread
// before fanning out), so they fall back to the heap path. The state itself
// is mutex-guarded, so escaped buffers may be destroyed from any thread.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gnn4tdl {

namespace arena_internal {
class ArenaState;
}  // namespace arena_internal

/// Point-in-time counters for one Arena (see docs/MEMORY.md for how these
/// map to the arena.* gauges the trainer exports).
struct ArenaStats {
  uint64_t alloc_calls = 0;     ///< buffers checked out of this arena
  uint64_t pool_hits = 0;       ///< checkouts served from the freelist
  size_t live_bytes = 0;        ///< bytes currently checked out
  size_t high_water_bytes = 0;  ///< max live_bytes over the arena's life
};

/// A slab pool. Construct once per training run and install with ArenaScope;
/// destroying the Arena releases the slabs as soon as no escaped buffer
/// references them.
class Arena {
 public:
  Arena();
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ArenaStats stats() const;

 private:
  friend class ArenaScope;
  std::shared_ptr<arena_internal::ArenaState> state_;
};

/// RAII scope: while alive, DoubleBuffer allocations on the constructing
/// thread draw from `arena`. Scopes nest; the previous target is restored on
/// destruction. Must be destroyed on the thread that constructed it.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// True if the calling thread currently has an arena installed.
  static bool Active();

 private:
  std::shared_ptr<arena_internal::ArenaState> prev_;
};

/// Contiguous buffer of doubles: Matrix's storage. Drawn from the calling
/// thread's scoped arena when one is installed, from the heap otherwise.
/// Holding the arena state by shared_ptr makes escape safe (see file
/// comment). Interface mirrors the std::vector<double> it replaced.
class DoubleBuffer {
 public:
  DoubleBuffer() = default;
  /// n doubles, zero-filled.
  explicit DoubleBuffer(size_t n);
  /// n doubles, filled with `value`.
  DoubleBuffer(size_t n, double value);
  /// Copies `src` (used by the Matrix(rows, cols, vector) constructor).
  explicit DoubleBuffer(const std::vector<double>& src);

  DoubleBuffer(const DoubleBuffer& other);
  DoubleBuffer& operator=(const DoubleBuffer& other);
  DoubleBuffer(DoubleBuffer&& other) noexcept;
  DoubleBuffer& operator=(DoubleBuffer&& other) noexcept;
  ~DoubleBuffer();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double* data() { return ptr_; }
  const double* data() const { return ptr_; }
  double* begin() { return ptr_; }
  double* end() { return ptr_ + size_; }
  const double* begin() const { return ptr_; }
  const double* end() const { return ptr_ + size_; }
  double& operator[](size_t i) { return ptr_[i]; }
  const double& operator[](size_t i) const { return ptr_[i]; }

 private:
  void Acquire(size_t n);  // sets ptr_/cap_/owner_ or heap_; size_ = n
  void Release();          // returns the slab; leaves *this empty

  double* ptr_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;  // doubles actually reserved (pow2 size class)
  std::shared_ptr<arena_internal::ArenaState> owner_;  // null => heap buffer
  std::unique_ptr<double[]> heap_;                     // set iff owner_ null
};

}  // namespace gnn4tdl
