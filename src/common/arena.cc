#include "common/arena.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace gnn4tdl {
namespace arena_internal {

namespace {

// Smallest slab: 64 doubles (512 B). Anything below rounds up — the tape's
// scalars and row vectors all share one class, which keeps the freelist
// fan-out small.
constexpr size_t kMinSlabDoubles = 64;
constexpr size_t kNumClasses = 64;

size_t ClassOf(size_t n) {
  const size_t cap = std::bit_ceil(std::max(n, kMinSlabDoubles));
  return static_cast<size_t>(std::countr_zero(cap));
}

}  // namespace

/// The shared pool: slabs keyed by pow2 size class. Owned jointly by the
/// Arena and every checked-out DoubleBuffer, so slabs outlive the Arena if
/// buffers escape it. All methods lock; contention is negligible because the
/// tape allocates from one thread.
class ArenaState {
 public:
  /// Returns a slab of >= n doubles (contents undefined) and its capacity.
  std::pair<double*, size_t> Acquire(size_t n) {
    const size_t cls = ClassOf(n);
    const size_t cap = size_t{1} << cls;
    MutexLock lock(&mu_);
    ++stats_.alloc_calls;
    stats_.live_bytes += cap * sizeof(double);
    stats_.high_water_bytes =
        std::max(stats_.high_water_bytes, stats_.live_bytes);
    if (!free_[cls].empty()) {
      ++stats_.pool_hits;
      double* p = free_[cls].back().release();
      free_[cls].pop_back();
      return {p, cap};
    }
    return {std::make_unique_for_overwrite<double[]>(cap).release(), cap};
  }

  /// Takes the slab back onto its freelist; it is reused dirty.
  void Release(double* p, size_t cap) {
    const size_t cls = static_cast<size_t>(std::countr_zero(cap));
    MutexLock lock(&mu_);
    GNN4TDL_CHECK_GE(stats_.live_bytes, cap * sizeof(double));
    stats_.live_bytes -= cap * sizeof(double);
    free_[cls].emplace_back(p);
  }

  ArenaStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  mutable Mutex mu_;
  std::vector<std::unique_ptr<double[]>> free_[kNumClasses]
      GNN4TDL_GUARDED_BY(mu_);
  ArenaStats stats_ GNN4TDL_GUARDED_BY(mu_);
};

namespace {

// The calling thread's allocation target. shared_ptr (not raw) so a scope
// that outlives its Arena — a bug, but one the type system can't rule out —
// degrades to keeping the state alive instead of dangling.
thread_local std::shared_ptr<ArenaState> t_current;

}  // namespace

}  // namespace arena_internal

using arena_internal::ArenaState;
using arena_internal::t_current;

Arena::Arena() : state_(std::make_shared<ArenaState>()) {}

Arena::~Arena() = default;

ArenaStats Arena::stats() const { return state_->stats(); }

ArenaScope::ArenaScope(Arena* arena) : prev_(std::move(t_current)) {
  GNN4TDL_CHECK(arena != nullptr);
  t_current = arena->state_;
}

ArenaScope::~ArenaScope() { t_current = std::move(prev_); }

bool ArenaScope::Active() { return t_current != nullptr; }

void DoubleBuffer::Acquire(size_t n) {
  size_ = n;
  if (n == 0) return;
  if (t_current) {
    owner_ = t_current;
    auto [p, cap] = owner_->Acquire(n);
    ptr_ = p;
    cap_ = cap;
  } else {
    heap_ = std::make_unique_for_overwrite<double[]>(n);
    ptr_ = heap_.get();
    cap_ = n;
  }
  // Per-span memory attribution: any open TraceSpan on this thread records
  // the delta of this counter, so an epoch or serve-batch span shows what it
  // acquired (arena-pooled and heap alike). One thread-local add.
  obs::AddAllocatedBytesOnThisThread(cap_ * sizeof(double));
}

void DoubleBuffer::Release() {
  if (owner_ != nullptr && ptr_ != nullptr) owner_->Release(ptr_, cap_);
  owner_.reset();
  heap_.reset();
  ptr_ = nullptr;
  size_ = 0;
  cap_ = 0;
}

DoubleBuffer::DoubleBuffer(size_t n) {
  Acquire(n);
  if (ptr_ != nullptr) std::fill(ptr_, ptr_ + size_, 0.0);
}

DoubleBuffer::DoubleBuffer(size_t n, double value) {
  Acquire(n);
  if (ptr_ != nullptr) std::fill(ptr_, ptr_ + size_, value);
}

DoubleBuffer::DoubleBuffer(const std::vector<double>& src) {
  Acquire(src.size());
  if (ptr_ != nullptr) std::memcpy(ptr_, src.data(), size_ * sizeof(double));
}

DoubleBuffer::DoubleBuffer(const DoubleBuffer& other) {
  Acquire(other.size_);
  if (ptr_ != nullptr)
    std::memcpy(ptr_, other.ptr_, size_ * sizeof(double));
}

DoubleBuffer& DoubleBuffer::operator=(const DoubleBuffer& other) {
  if (this == &other) return *this;
  // Same-size assignment reuses the slab in place; anything else swaps it
  // for a fresh checkout.
  if (size_ != other.size_) {
    Release();
    Acquire(other.size_);
  }
  if (ptr_ != nullptr)
    std::memcpy(ptr_, other.ptr_, size_ * sizeof(double));
  return *this;
}

DoubleBuffer::DoubleBuffer(DoubleBuffer&& other) noexcept
    : ptr_(other.ptr_),
      size_(other.size_),
      cap_(other.cap_),
      owner_(std::move(other.owner_)),
      heap_(std::move(other.heap_)) {
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.cap_ = 0;
}

DoubleBuffer& DoubleBuffer::operator=(DoubleBuffer&& other) noexcept {
  if (this == &other) return *this;
  Release();
  ptr_ = other.ptr_;
  size_ = other.size_;
  cap_ = other.cap_;
  owner_ = std::move(other.owner_);
  heap_ = std::move(other.heap_);
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.cap_ = 0;
  return *this;
}

DoubleBuffer::~DoubleBuffer() { Release(); }

}  // namespace gnn4tdl
