// Scalar f32 kernel tier + runtime dispatch. This translation unit is
// compiled with -ffp-contract=off so the compiler cannot fuse the explicit
// mul/add structure behind our backs: every accumulation that must match the
// AVX2 tier bit for bit goes through std::fmaf (single rounding, the scalar
// twin of _mm256_fmadd_ps) in the same summation order. The scalar tier is a
// portability fallback and a correctness reference, not a fast path — on
// machines without hardware FMA, std::fmaf falls back to libm's correctly
// rounded soft implementation.

#include "kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/parallel.h"
#include "obs/kernel_hooks.h"

namespace gnn4tdl::kernels {

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kF64:
      return "f64";
    case Precision::kF32:
      return "f32";
  }
  return "unknown";
}

StatusOr<Precision> PrecisionFromName(const std::string& name) {
  if (name == "f64") return Precision::kF64;
  if (name == "f32") return Precision::kF32;
  return Status::InvalidArgument("unknown precision: '" + name +
                                 "' (expected f32 or f64)");
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

namespace {

// Row-block grain heuristics, mirroring the double kernels: aim for chunks of
// roughly this many flops so small serving batches stay on the calling thread.
constexpr size_t kGrainFlops = 1 << 14;

size_t RowGrain(size_t flops_per_row) {
  return std::max<size_t>(1, kGrainFlops / std::max<size_t>(1, flops_per_row));
}

// --- Scalar kernels --------------------------------------------------------
// Accumulation-order spec shared with kernels_avx2.cc (see docs/KERNELS.md):
//   matmul / spmm : out rows accumulate in k-order, each update is one fused
//                   multiply-add per output element (lanes across j are
//                   independent, so vectorizing j preserves the bits).
//   matmul_nt     : dot products accumulate into 8 accumulators striped by
//                   k % 8, reduced by detail::Combine8.

void MatmulScalar(const FMatrix& a, const FMatrix& b, FMatrix* out) {
  const size_t m = a.rows(), kd = a.cols(), n = b.cols();
  ParallelFor(0, m, RowGrain(2 * kd * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float* out_row = out->row_data(i);
      for (size_t j = 0; j < n; ++j) out_row[j] = 0.0f;
      const float* a_row = a.row_data(i);
      for (size_t k = 0; k < kd; ++k) {
        const float av = a_row[k];
        const float* b_row = b.row_data(k);
        for (size_t j = 0; j < n; ++j)
          out_row[j] = std::fmaf(av, b_row[j], out_row[j]);
      }
    }
  });
}

void MatmulNtScalar(const FMatrix& a, const FMatrix& b, FMatrix* out) {
  const size_t m = a.rows(), kd = a.cols(), n = b.rows();
  ParallelFor(0, m, RowGrain(2 * kd * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* a_row = a.row_data(i);
      float* out_row = out->row_data(i);
      for (size_t j = 0; j < n; ++j) {
        const float* b_row = b.row_data(j);
        float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
        size_t k = 0;
        for (; k + 8 <= kd; k += 8) {
          for (size_t l = 0; l < 8; ++l)
            acc[l] = std::fmaf(a_row[k + l], b_row[k + l], acc[l]);
        }
        for (size_t l = 0; k < kd; ++k, ++l)
          acc[l] = std::fmaf(a_row[k], b_row[k], acc[l]);
        out_row[j] = detail::Combine8(acc);
      }
    }
  });
}

void SpmmScalar(const FCsr& s, const FMatrix& x, FMatrix* out) {
  const size_t n = x.cols();
  const size_t flops_per_row =
      s.rows > 0 ? 2 * n * std::max<size_t>(1, s.nnz() / s.rows) : 1;
  ParallelFor(0, s.rows, RowGrain(flops_per_row), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* out_row = out->row_data(r);
      for (size_t j = 0; j < n; ++j) out_row[j] = 0.0f;
      for (uint32_t k = s.row_ptr[r]; k < s.row_ptr[r + 1]; ++k) {
        const float v = s.values[k];
        const float* x_row = x.row_data(s.col_idx[k]);
        for (size_t j = 0; j < n; ++j)
          out_row[j] = std::fmaf(v, x_row[j], out_row[j]);
      }
    }
  });
}

void SpmmBiasActScalar(const FCsr& s, const FMatrix& x, const float* bias,
                       FAct act, float alpha, FMatrix* out) {
  const size_t n = x.cols();
  const size_t flops_per_row =
      s.rows > 0 ? 2 * n * std::max<size_t>(1, s.nnz() / s.rows) : 1;
  ParallelFor(0, s.rows, RowGrain(flops_per_row), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* out_row = out->row_data(r);
      for (size_t j = 0; j < n; ++j) out_row[j] = 0.0f;
      for (uint32_t k = s.row_ptr[r]; k < s.row_ptr[r + 1]; ++k) {
        const float v = s.values[k];
        const float* x_row = x.row_data(s.col_idx[k]);
        for (size_t j = 0; j < n; ++j)
          out_row[j] = std::fmaf(v, x_row[j], out_row[j]);
      }
      // The row is complete and hot: apply bias+activation before moving on.
      for (size_t j = 0; j < n; ++j) {
        out_row[j] = detail::ApplyBiasAct(
            out_row[j], bias != nullptr ? bias[j] : 0.0f, act, alpha);
      }
    }
  });
}

void BiasActScalar(FMatrix* x, const float* bias, FAct act, float alpha) {
  const size_t cols = x->cols();
  for (size_t r = 0; r < x->rows(); ++r) {
    float* row = x->row_data(r);
    for (size_t j = 0; j < cols; ++j) {
      row[j] = detail::ApplyBiasAct(row[j], bias != nullptr ? bias[j] : 0.0f,
                                    act, alpha);
    }
  }
}

void ScaleAddScalar(const FMatrix& a, float sa, const FMatrix& b, float sb,
                    FMatrix* out) {
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  // Spec: round sb*b first, then one fused multiply-add — matches the AVX2
  // mul + fmadd sequence exactly.
  for (size_t i = 0; i < a.size(); ++i)
    po[i] = std::fmaf(sa, pa[i], sb * pb[i]);
}

const KernelTable kScalarTable = {
    SimdLevel::kScalar, MatmulScalar,   MatmulNtScalar,    SpmmScalar,
    BiasActScalar,      ScaleAddScalar, SpmmBiasActScalar,
};

SimdLevel ProbeSimdLevel() {
  const KernelTable* avx2 = detail::Avx2TableOrNull();
  bool cpu_ok = false;
#if defined(__x86_64__) || defined(__i386__)
  cpu_ok = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#endif
  const bool avx2_available = avx2 != nullptr && cpu_ok;
  const char* env = std::getenv("GNN4TDL_SIMD");
  if (env != nullptr) {
    const std::string want(env);
    if (want == "scalar") return SimdLevel::kScalar;
    if (want == "avx2" && avx2_available) return SimdLevel::kAvx2;
    // Unknown or unavailable request: fall back to scalar, the tier that is
    // always correct, rather than guessing upward.
    return SimdLevel::kScalar;
  }
  return avx2_available ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

}  // namespace

const KernelTable* GetKernelTable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarTable;
    case SimdLevel::kAvx2:
      return detail::Avx2TableOrNull();
  }
  return nullptr;
}

const KernelTable& Dispatch() {
  // Probed once; the env override is read at first use and sticky thereafter
  // (tests that need both tiers in one process use GetKernelTable directly).
  static const KernelTable* table = [] {
    const KernelTable* t = GetKernelTable(ProbeSimdLevel());
    return t != nullptr ? t : &kScalarTable;
  }();
  return *table;
}

// ---------------------------------------------------------------------------
// Public wrappers: shape checks + obs accounting + dispatch
// ---------------------------------------------------------------------------

void Matmul(const FMatrix& a, const FMatrix& b, FMatrix* out) {
  GNN4TDL_CHECK_EQ(a.cols(), b.rows());
  if (out->rows() != a.rows() || out->cols() != b.cols())
    *out = FMatrix(a.rows(), b.cols());
  const double m = static_cast<double>(a.rows());
  const double k = static_cast<double>(a.cols());
  const double n = static_cast<double>(b.cols());
  obs::KernelScope kernel("matmul_f32", 2.0 * m * k * n,
                          4.0 * (m * k + k * n + m * n));
  Dispatch().matmul(a, b, out);
}

void MatmulNt(const FMatrix& a, const FMatrix& b, FMatrix* out) {
  GNN4TDL_CHECK_EQ(a.cols(), b.cols());
  if (out->rows() != a.rows() || out->cols() != b.rows())
    *out = FMatrix(a.rows(), b.rows());
  const double m = static_cast<double>(a.rows());
  const double k = static_cast<double>(a.cols());
  const double n = static_cast<double>(b.rows());
  obs::KernelScope kernel("matmul_nt_f32", 2.0 * m * k * n,
                          4.0 * (m * k + n * k + m * n));
  Dispatch().matmul_nt(a, b, out);
}

void Spmm(const FCsr& s, const FMatrix& x, FMatrix* out) {
  GNN4TDL_CHECK_EQ(s.cols, x.rows());
  if (out->rows() != s.rows || out->cols() != x.cols())
    *out = FMatrix(s.rows, x.cols());
  const double nnz = static_cast<double>(s.nnz());
  const double n = static_cast<double>(x.cols());
  obs::KernelScope kernel(
      "spmm_f32", 2.0 * nnz * n,
      4.0 * (nnz * (n + 2) + static_cast<double>(s.rows) * n));
  Dispatch().spmm(s, x, out);
}

void WeightedSpmm(const std::vector<float>& weights,
                  const std::vector<size_t>& slot, FCsr* pattern,
                  const FMatrix& x, FMatrix* out) {
  GNN4TDL_CHECK_EQ(weights.size(), slot.size());
  GNN4TDL_CHECK_EQ(pattern->nnz(), weights.size());
  {
    obs::KernelScope scatter("weighted_spmm_f32", 0.0,
                             8.0 * static_cast<double>(weights.size()));
    for (size_t e = 0; e < weights.size(); ++e)
      pattern->values[slot[e]] = weights[e];
  }
  Spmm(*pattern, x, out);
}

void SegmentSoftmax(const std::vector<float>& logits,
                    const std::vector<size_t>& seg, size_t num_groups,
                    std::vector<float>* out) {
  GNN4TDL_CHECK_EQ(logits.size(), seg.size());
  const size_t e_count = logits.size();
  obs::KernelScope kernel(
      "segment_softmax_f32", 5.0 * static_cast<double>(e_count),
      4.0 * (3.0 * static_cast<double>(e_count) +
             2.0 * static_cast<double>(num_groups)));
  // Max-shifted, three passes, serial accumulation in edge order — identical
  // on every tier (SegmentSoftmax is E x 1; expf dominates, not bandwidth).
  std::vector<float> group_max(num_groups,
                               -std::numeric_limits<float>::infinity());
  for (size_t e = 0; e < e_count; ++e) {
    GNN4TDL_CHECK_LT(seg[e], num_groups);
    if (logits[e] > group_max[seg[e]]) group_max[seg[e]] = logits[e];
  }
  out->assign(e_count, 0.0f);
  std::vector<float> group_sum(num_groups, 0.0f);
  for (size_t e = 0; e < e_count; ++e) {
    const float v = std::exp(logits[e] - group_max[seg[e]]);
    (*out)[e] = v;
    group_sum[seg[e]] += v;
  }
  for (size_t e = 0; e < e_count; ++e) {
    const float denom = group_sum[seg[e]];
    if (denom > 0.0f) (*out)[e] /= denom;
  }
}

void BiasAct(FMatrix* x, const float* bias, FAct act, float alpha) {
  const double m = static_cast<double>(x->rows());
  const double n = static_cast<double>(x->cols());
  obs::KernelScope kernel("bias_act_f32", 2.0 * m * n,
                          4.0 * (2.0 * m * n + (bias != nullptr ? n : 0.0)));
  Dispatch().bias_act(x, bias, act, alpha);
}

void SpmmBiasAct(const FCsr& s, const FMatrix& x, const float* bias, FAct act,
                 FMatrix* out, float alpha) {
  GNN4TDL_CHECK_EQ(s.cols, x.rows());
  if (out->rows() != s.rows || out->cols() != x.cols())
    *out = FMatrix(s.rows, x.cols());
  const double nnz = static_cast<double>(s.nnz());
  const double m = static_cast<double>(s.rows);
  const double n = static_cast<double>(x.cols());
  // The fusion saves one full write+read of the (m x n) intermediate versus
  // Spmm + BiasAct — visible in the bytes accounting here vs the two-kernel
  // sum.
  obs::KernelScope kernel(
      "spmm_bias_act_f32", 2.0 * nnz * n + 2.0 * m * n,
      4.0 * (nnz * (n + 2) + m * n + (bias != nullptr ? n : 0.0)));
  Dispatch().spmm_bias_act(s, x, bias, act, alpha, out);
}

void ScaleAdd(const FMatrix& a, float sa, const FMatrix& b, float sb,
              FMatrix* out) {
  GNN4TDL_CHECK_EQ(a.rows(), b.rows());
  GNN4TDL_CHECK_EQ(a.cols(), b.cols());
  if (out->rows() != a.rows() || out->cols() != a.cols())
    *out = FMatrix(a.rows(), a.cols());
  const double mn = static_cast<double>(a.size());
  obs::KernelScope kernel("scale_add_f32", 3.0 * mn, 4.0 * 3.0 * mn);
  Dispatch().scale_add(a, sa, b, sb, out);
}

}  // namespace gnn4tdl::kernels
