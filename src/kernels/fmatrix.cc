#include "kernels/fmatrix.h"

#include <limits>

namespace gnn4tdl::kernels {

FMatrix FMatrix::FromDouble(const Matrix& m) {
  FMatrix out(m.rows(), m.cols());
  const double* src = m.data();
  float* dst = out.data();
  for (size_t i = 0; i < out.size(); ++i) dst[i] = static_cast<float>(src[i]);
  return out;
}

Matrix FMatrix::ToDouble() const {
  Matrix out(rows_, cols_);
  double* dst = out.data();
  for (size_t i = 0; i < data_.size(); ++i)
    dst[i] = static_cast<double>(data_[i]);
  return out;
}

void FMatrix::SetRowFromDouble(size_t r_dst, const double* src) {
  GNN4TDL_CHECK_LT(r_dst, rows_);
  float* dst = row_data(r_dst);
  for (size_t j = 0; j < cols_; ++j) dst[j] = static_cast<float>(src[j]);
}

void FMatrix::SetRow(size_t r_dst, const FMatrix& other, size_t r_src) {
  GNN4TDL_CHECK_LT(r_dst, rows_);
  GNN4TDL_CHECK_LT(r_src, other.rows());
  GNN4TDL_CHECK_EQ(cols_, other.cols());
  const float* src = other.row_data(r_src);
  float* dst = row_data(r_dst);
  for (size_t j = 0; j < cols_; ++j) dst[j] = src[j];
}

FCsr FCsr::FromDouble(const SparseMatrix& m) {
  constexpr size_t kMax = std::numeric_limits<uint32_t>::max();
  GNN4TDL_CHECK_LE(m.rows(), kMax);
  GNN4TDL_CHECK_LE(m.cols(), kMax);
  GNN4TDL_CHECK_LE(m.nnz(), kMax);
  FCsr out;
  out.rows = m.rows();
  out.cols = m.cols();
  out.row_ptr.reserve(m.row_ptr().size());
  for (size_t p : m.row_ptr()) out.row_ptr.push_back(static_cast<uint32_t>(p));
  out.col_idx.reserve(m.nnz());
  for (size_t c : m.col_idx()) out.col_idx.push_back(static_cast<uint32_t>(c));
  out.values.reserve(m.nnz());
  for (double v : m.values()) out.values.push_back(static_cast<float>(v));
  return out;
}

}  // namespace gnn4tdl::kernels
