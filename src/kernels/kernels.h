#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "kernels/fmatrix.h"

namespace gnn4tdl::kernels {

// ---------------------------------------------------------------------------
// Precision tiers
// ---------------------------------------------------------------------------

/// Numeric tier a frozen artifact is served with. Training is always kF64
/// (double, deterministic, autograd-taped); kF32 is the opt-in inference tier
/// implemented by this subsystem. See docs/KERNELS.md "f32 inference tier".
enum class Precision { kF64, kF32 };

const char* PrecisionName(Precision p);

/// Parses "f32" / "f64". Unknown names are InvalidArgument.
StatusOr<Precision> PrecisionFromName(const std::string& name);

// ---------------------------------------------------------------------------
// Activations (shared table with nn/module.h — see ToKernelActivation there)
// ---------------------------------------------------------------------------

/// Activation applied by the fused bias+activation kernel. Mirrors
/// nn::Activation one-to-one so the serving tier and the training modules
/// share a single activation vocabulary.
enum class FAct { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch
// ---------------------------------------------------------------------------

/// Instruction-set tier of an f32 kernel implementation. kScalar is always
/// available and is the bit-exact reference for every vectorized tier: the
/// two paths use single-rounding fused multiply-adds (std::fmaf vs
/// _mm256_fmadd_ps) in the identical summation order, so for the same inputs
/// they produce the same bits — CI runs the tolerance suite under both and a
/// dedicated test memcmp-compares them (tools/check.sh stage `simd`).
enum class SimdLevel { kScalar, kAvx2 };

const char* SimdLevelName(SimdLevel level);

/// The f32 kernel function table one SIMD tier implements. All kernels are
/// thread-safe (pure, write-disjoint ParallelFor partitions) and run on the
/// shared ThreadPool where row counts justify it, with the same
/// bit-exact-at-every-thread-count contract as the double kernels.
struct KernelTable {
  SimdLevel level = SimdLevel::kScalar;

  /// out = a * b, a is (m x k), b is (k x n). out must be pre-shaped and is
  /// overwritten.
  void (*matmul)(const FMatrix& a, const FMatrix& b, FMatrix* out) = nullptr;

  /// out = a * b^T, a is (m x k), b is (n x k) -> out (m x n).
  void (*matmul_nt)(const FMatrix& a, const FMatrix& b, FMatrix* out) = nullptr;

  /// out = s * x, s is (r x c) CSR, x is (c x n) -> out (r x n).
  void (*spmm)(const FCsr& s, const FMatrix& x, FMatrix* out) = nullptr;

  /// In place x(r, j) = act(x(r, j) + bias[j]); bias may be null (activation
  /// only). `alpha` is the LeakyRelu negative slope.
  void (*bias_act)(FMatrix* x, const float* bias, FAct act,
                   float alpha) = nullptr;

  /// out = sa * a + sb * b elementwise (same shape); the fused axpby used for
  /// SAGE self+neighbor sums, GIN (1+eps) scaling, and APPNP teleport mixing.
  void (*scale_add)(const FMatrix& a, float sa, const FMatrix& b, float sb,
                    FMatrix* out) = nullptr;

  /// out = act(s * x + bias): the SpMM accumulation (identical k-order and
  /// rounding to `spmm`) followed per completed output row by the fused
  /// bias+activation while the row is still cache-hot. Bit-identical to
  /// calling `spmm` then `bias_act`; bias may be null. The single-pass GCN
  /// layer kernel of the fused execution tier (docs/MEMORY.md).
  void (*spmm_bias_act)(const FCsr& s, const FMatrix& x, const float* bias,
                        FAct act, float alpha, FMatrix* out) = nullptr;
};

/// The table for an explicit tier. kScalar always works; kAvx2 returns null
/// when the binary was built without the AVX2 translation unit or the CPU
/// lacks AVX2+FMA. Tests use this to compare tiers inside one process.
const KernelTable* GetKernelTable(SimdLevel level);

/// The active dispatch table: probed once (first call) from CPUID —
/// AVX2+FMA when available, scalar otherwise. The env var GNN4TDL_SIMD
/// ("scalar" | "avx2") overrides the probe; requesting an unavailable tier
/// falls back to scalar. The choice is process-wide and sticky.
const KernelTable& Dispatch();

// ---------------------------------------------------------------------------
// Public f32 kernels (dispatch + obs accounting)
// ---------------------------------------------------------------------------
// Each wrapper opens an obs::KernelScope with exact FLOP/byte counts
// (4-byte elements and indices — the traffic halving the tier exists for is
// visible in traces and bench kernel_counters) and calls through Dispatch().

/// out = a * b. Shapes checked; out is resized.
void Matmul(const FMatrix& a, const FMatrix& b, FMatrix* out);

/// out = a * b^T.
void MatmulNt(const FMatrix& a, const FMatrix& b, FMatrix* out);

/// out = s * x.
void Spmm(const FCsr& s, const FMatrix& x, FMatrix* out);

/// Edge-weighted aggregation out[d, :] = sum_{e : dst[e]==d} w[e] * x[src[e]]
/// routed through the SpMM kernel: `pattern` is the fixed CSR sparsity (row =
/// dst, col = src) whose value slots are overwritten with weights[e] at
/// pattern.values[slot[e]] — the f32 mirror of ops::WeightedSpMM (GAT
/// attention aggregation). `pattern` is caller-owned scratch.
void WeightedSpmm(const std::vector<float>& weights,
                  const std::vector<size_t>& slot, FCsr* pattern,
                  const FMatrix& x, FMatrix* out);

/// Max-shifted per-group softmax over edge logits: groups are seg values in
/// [0, num_groups). The f32 mirror of SegmentSoftmax (GAT attention
/// normalization). Scalar on every tier (expf dominates; E x 1 data is never
/// bandwidth-bound), so dispatch paths are trivially bit-identical.
void SegmentSoftmax(const std::vector<float>& logits,
                    const std::vector<size_t>& seg, size_t num_groups,
                    std::vector<float>* out);

/// In place fused bias + activation.
void BiasAct(FMatrix* x, const float* bias, FAct act, float alpha = 0.2f);

/// out = act(s * x + bias) in one pass (SpMM + bias + activation fused).
/// Bit-identical to Spmm followed by BiasAct at every SIMD tier and thread
/// count; bias may be null.
void SpmmBiasAct(const FCsr& s, const FMatrix& x, const float* bias, FAct act,
                 FMatrix* out, float alpha = 0.2f);

/// out = sa * a + sb * b.
void ScaleAdd(const FMatrix& a, float sa, const FMatrix& b, float sb,
              FMatrix* out);

// ---------------------------------------------------------------------------
// Shared accumulation-order helpers (internal; in the header so the scalar
// and AVX2 translation units compile the *same* combine code)
// ---------------------------------------------------------------------------

namespace detail {

/// Canonical horizontal reduction of 8 striped accumulators (lane l holds the
/// partial sum of elements with k % 8 == l). Fixed pairwise tree — both
/// dispatch tiers reduce in exactly this order, which is what makes the
/// vectorized dot products bit-identical to the scalar ones.
inline float Combine8(const float acc[8]) {
  const float s01 = acc[0] + acc[1];
  const float s23 = acc[2] + acc[3];
  const float s45 = acc[4] + acc[5];
  const float s67 = acc[6] + acc[7];
  return (s01 + s23) + (s45 + s67);
}

/// Scalar fused bias+activation for one value; the reference semantics both
/// tiers implement (AVX2 vectorizes kNone/kRelu/kLeakyRelu with max/blend,
/// which round identically; kSigmoid/kTanh always take this scalar path so
/// libm calls stay identical across tiers).
inline float ApplyBiasAct(float v, float bias, FAct act, float alpha) {
  const float x = v + bias;
  switch (act) {
    case FAct::kNone:
      return x;
    case FAct::kRelu:
      return x > 0.0f ? x : 0.0f;
    case FAct::kLeakyRelu:
      return x > 0.0f ? x : alpha * x;
    case FAct::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case FAct::kTanh:
      return std::tanh(x);
  }
  return x;
}

/// Defined by the AVX2 translation unit: the AVX2 table when that unit was
/// compiled with vector support, null otherwise (non-x86 builds).
const KernelTable* Avx2TableOrNull();

}  // namespace detail

}  // namespace gnn4tdl::kernels
