#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gnn4tdl::kernels {

/// Dense row-major matrix of floats: the storage layer of the single-precision
/// inference kernel tier (src/kernels). Serving is memory-bandwidth-bound
/// (BENCH_serving.json shows ~4.7 bytes moved per FLOP on the double path), so
/// halving the element width is a direct throughput lever. FMatrix is
/// deliberately *not* a second autograd container: it has no tape, no
/// gradients, and no arithmetic operators — all compute on FMatrix goes
/// through the dispatched kernels in kernels/kernels.h. Training stays on the
/// double-precision Matrix; conversion happens once at a FrozenModel load
/// boundary (see serve/f32_scorer.h).
class FMatrix {
 public:
  FMatrix() : rows_(0), cols_(0) {}
  FMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Casts a double matrix down entry by entry (round-to-nearest).
  static FMatrix FromDouble(const Matrix& m);

  /// Widens back to double (exact: every float is representable).
  Matrix ToDouble() const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    GNN4TDL_CHECK_LT(r, rows_);
    GNN4TDL_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    GNN4TDL_CHECK_LT(r, rows_);
    GNN4TDL_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row_data(size_t r) { return data_.data() + r * cols_; }
  const float* row_data(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r of a *double* matrix into row r_dst here, casting down.
  /// The per-row gather used when assembling an attached serving batch from
  /// the pre-cast training cache plus freshly cast request rows.
  void SetRowFromDouble(size_t r_dst, const double* src);

  /// Copies row r_src of `other` into row r_dst here (same column count).
  void SetRow(size_t r_dst, const FMatrix& other, size_t r_src);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Immutable CSR sparse matrix with float values and 32-bit indices — the
/// message-passing operator of the f32 tier. 32-bit indices are a deliberate
/// part of the bandwidth story: an SpMM touches one value + one column index
/// per nonzero, so shrinking both from 8 to 4 bytes halves the irregular
/// traffic, not just the dense traffic.
struct FCsr {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<uint32_t> row_ptr;  // rows + 1 entries
  std::vector<uint32_t> col_idx;
  std::vector<float> values;

  /// Casts a double CSR down. Checks that every dimension and nnz fits in
  /// 32-bit indices (serving graphs are far below 4B nodes/edges).
  static FCsr FromDouble(const SparseMatrix& m);

  size_t nnz() const { return col_idx.size(); }
};

}  // namespace gnn4tdl::kernels
