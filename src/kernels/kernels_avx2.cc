// AVX2+FMA f32 kernel tier. This translation unit is always part of the
// build; the intrinsics inside are gated on GNN4TDL_HAVE_AVX2_TU, which the
// build sets only on x86-64 (together with -mavx2 -mfma -ffp-contract=off).
// On other targets detail::Avx2TableOrNull() simply returns null and dispatch
// stays scalar.
//
// Bit-exactness contract with kernels.cc (verified by tests/kernels_test.cc
// and the check.sh `simd` stage): every accumulation is a single-rounding
// fused multiply-add (_mm256_fmadd_ps here, std::fmaf there) applied in the
// identical summation order. Vector lanes in matmul/spmm map to independent
// output columns, so 8-wide execution does not reorder any sum; matmul_nt
// stripes dot products across the 8 lanes exactly like the scalar path's
// acc[k % 8] and reduces through the shared detail::Combine8 tree.
// -ffp-contract=off matters here too: without it GCC may contract the
// separate mul/add in the scale_add tail into an fma the scalar tier did not
// perform.

#include "kernels/kernels.h"

#if defined(GNN4TDL_HAVE_AVX2_TU)
#include <immintrin.h>

#include <cmath>

#include "common/parallel.h"

namespace gnn4tdl::kernels {
namespace {

constexpr size_t kGrainFlops = 1 << 14;

size_t RowGrain(size_t flops_per_row) {
  return std::max<size_t>(1, kGrainFlops / std::max<size_t>(1, flops_per_row));
}

void MatmulAvx2(const FMatrix& a, const FMatrix& b, FMatrix* out) {
  const size_t m = a.rows(), kd = a.cols(), n = b.cols();
  const size_t n8 = n - n % 8;
  ParallelFor(0, m, RowGrain(2 * kd * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      float* out_row = out->row_data(i);
      for (size_t j = 0; j < n; ++j) out_row[j] = 0.0f;
      const float* a_row = a.row_data(i);
      for (size_t k = 0; k < kd; ++k) {
        const float av = a_row[k];
        const float* b_row = b.row_data(k);
        const __m256 vav = _mm256_set1_ps(av);
        size_t j = 0;
        for (; j < n8; j += 8) {
          const __m256 acc = _mm256_loadu_ps(out_row + j);
          _mm256_storeu_ps(out_row + j,
                           _mm256_fmadd_ps(vav, _mm256_loadu_ps(b_row + j),
                                           acc));
        }
        for (; j < n; ++j) out_row[j] = std::fmaf(av, b_row[j], out_row[j]);
      }
    }
  });
}

void MatmulNtAvx2(const FMatrix& a, const FMatrix& b, FMatrix* out) {
  const size_t m = a.rows(), kd = a.cols(), n = b.rows();
  const size_t k8 = kd - kd % 8;
  ParallelFor(0, m, RowGrain(2 * kd * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* a_row = a.row_data(i);
      float* out_row = out->row_data(i);
      for (size_t j = 0; j < n; ++j) {
        const float* b_row = b.row_data(j);
        __m256 vacc = _mm256_setzero_ps();
        size_t k = 0;
        for (; k < k8; k += 8) {
          vacc = _mm256_fmadd_ps(_mm256_loadu_ps(a_row + k),
                                 _mm256_loadu_ps(b_row + k), vacc);
        }
        // Lane l of vacc is exactly the scalar path's acc[l]; fold the k-tail
        // into lanes 0..tail-1 the same way, then reduce via the shared tree.
        alignas(32) float acc[8];
        _mm256_store_ps(acc, vacc);
        for (size_t l = 0; k < kd; ++k, ++l)
          acc[l] = std::fmaf(a_row[k], b_row[k], acc[l]);
        out_row[j] = detail::Combine8(acc);
      }
    }
  });
}

void SpmmAvx2(const FCsr& s, const FMatrix& x, FMatrix* out) {
  const size_t n = x.cols();
  const size_t n8 = n - n % 8;
  const size_t flops_per_row =
      s.rows > 0 ? 2 * n * std::max<size_t>(1, s.nnz() / s.rows) : 1;
  ParallelFor(0, s.rows, RowGrain(flops_per_row), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* out_row = out->row_data(r);
      for (size_t j = 0; j < n; ++j) out_row[j] = 0.0f;
      for (uint32_t k = s.row_ptr[r]; k < s.row_ptr[r + 1]; ++k) {
        const float v = s.values[k];
        const float* x_row = x.row_data(s.col_idx[k]);
        const __m256 vv = _mm256_set1_ps(v);
        size_t j = 0;
        for (; j < n8; j += 8) {
          const __m256 acc = _mm256_loadu_ps(out_row + j);
          _mm256_storeu_ps(out_row + j,
                           _mm256_fmadd_ps(vv, _mm256_loadu_ps(x_row + j),
                                           acc));
        }
        for (; j < n; ++j) out_row[j] = std::fmaf(v, x_row[j], out_row[j]);
      }
    }
  });
}

// Bias+activation over one completed row. The piecewise-linear activations
// vectorize with add/max/blend (exact — no rounding differences vs the scalar
// helper); sigmoid/tanh call libm through detail::ApplyBiasAct so the
// transcendental bits match the scalar tier exactly.
void ApplyBiasActRowAvx2(float* row, size_t cols, const float* bias, FAct act,
                         float alpha) {
  if (act == FAct::kSigmoid || act == FAct::kTanh) {
    for (size_t j = 0; j < cols; ++j) {
      row[j] = detail::ApplyBiasAct(row[j], bias != nullptr ? bias[j] : 0.0f,
                                    act, alpha);
    }
    return;
  }
  const size_t c8 = cols - cols % 8;
  const __m256 vzero = _mm256_setzero_ps();
  const __m256 valpha = _mm256_set1_ps(alpha);
  size_t j = 0;
  for (; j < c8; j += 8) {
    __m256 v = _mm256_loadu_ps(row + j);
    if (bias != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(bias + j));
    switch (act) {
      case FAct::kNone:
        break;
      case FAct::kRelu:
        v = _mm256_max_ps(v, vzero);
        break;
      case FAct::kLeakyRelu: {
        const __m256 neg = _mm256_mul_ps(v, valpha);
        const __m256 pos_mask = _mm256_cmp_ps(v, vzero, _CMP_GT_OQ);
        v = _mm256_blendv_ps(neg, v, pos_mask);
        break;
      }
      default:
        break;
    }
    _mm256_storeu_ps(row + j, v);
  }
  for (; j < cols; ++j) {
    row[j] = detail::ApplyBiasAct(row[j], bias != nullptr ? bias[j] : 0.0f,
                                  act, alpha);
  }
}

void SpmmBiasActAvx2(const FCsr& s, const FMatrix& x, const float* bias,
                     FAct act, float alpha, FMatrix* out) {
  const size_t n = x.cols();
  const size_t n8 = n - n % 8;
  const size_t flops_per_row =
      s.rows > 0 ? 2 * n * std::max<size_t>(1, s.nnz() / s.rows) : 1;
  ParallelFor(0, s.rows, RowGrain(flops_per_row), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* out_row = out->row_data(r);
      for (size_t j = 0; j < n; ++j) out_row[j] = 0.0f;
      for (uint32_t k = s.row_ptr[r]; k < s.row_ptr[r + 1]; ++k) {
        const float v = s.values[k];
        const float* x_row = x.row_data(s.col_idx[k]);
        const __m256 vv = _mm256_set1_ps(v);
        size_t j = 0;
        for (; j < n8; j += 8) {
          const __m256 acc = _mm256_loadu_ps(out_row + j);
          _mm256_storeu_ps(out_row + j,
                           _mm256_fmadd_ps(vv, _mm256_loadu_ps(x_row + j),
                                           acc));
        }
        for (; j < n; ++j) out_row[j] = std::fmaf(v, x_row[j], out_row[j]);
      }
      ApplyBiasActRowAvx2(out_row, n, bias, act, alpha);
    }
  });
}

void BiasActAvx2(FMatrix* x, const float* bias, FAct act, float alpha) {
  // Sigmoid/tanh call libm, which the scalar tier must match exactly — route
  // those through the shared scalar helper. The piecewise-linear activations
  // vectorize with max/blend, which are exact (no rounding differences).
  if (act == FAct::kSigmoid || act == FAct::kTanh) {
    const size_t cols = x->cols();
    for (size_t r = 0; r < x->rows(); ++r) {
      float* row = x->row_data(r);
      for (size_t j = 0; j < cols; ++j) {
        row[j] = detail::ApplyBiasAct(row[j], bias != nullptr ? bias[j] : 0.0f,
                                      act, alpha);
      }
    }
    return;
  }
  const size_t cols = x->cols();
  const size_t c8 = cols - cols % 8;
  const __m256 vzero = _mm256_setzero_ps();
  const __m256 valpha = _mm256_set1_ps(alpha);
  for (size_t r = 0; r < x->rows(); ++r) {
    float* row = x->row_data(r);
    size_t j = 0;
    for (; j < c8; j += 8) {
      __m256 v = _mm256_loadu_ps(row + j);
      if (bias != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(bias + j));
      switch (act) {
        case FAct::kNone:
          break;
        case FAct::kRelu:
          v = _mm256_max_ps(v, vzero);
          break;
        case FAct::kLeakyRelu: {
          const __m256 neg = _mm256_mul_ps(v, valpha);
          const __m256 pos_mask = _mm256_cmp_ps(v, vzero, _CMP_GT_OQ);
          v = _mm256_blendv_ps(neg, v, pos_mask);
          break;
        }
        default:
          break;
      }
      _mm256_storeu_ps(row + j, v);
    }
    for (; j < cols; ++j) {
      row[j] = detail::ApplyBiasAct(row[j], bias != nullptr ? bias[j] : 0.0f,
                                    act, alpha);
    }
  }
}

void ScaleAddAvx2(const FMatrix& a, float sa, const FMatrix& b, float sb,
                  FMatrix* out) {
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  const size_t total = a.size();
  const size_t t8 = total - total % 8;
  const __m256 vsa = _mm256_set1_ps(sa);
  const __m256 vsb = _mm256_set1_ps(sb);
  size_t i = 0;
  for (; i < t8; i += 8) {
    // Same rounding as the scalar spec: sb*b rounded once (mul), then one
    // fused multiply-add of sa*a into it.
    const __m256 sbb = _mm256_mul_ps(vsb, _mm256_loadu_ps(pb + i));
    _mm256_storeu_ps(po + i,
                     _mm256_fmadd_ps(vsa, _mm256_loadu_ps(pa + i), sbb));
  }
  for (; i < total; ++i) po[i] = std::fmaf(sa, pa[i], sb * pb[i]);
}

const KernelTable kAvx2Table = {
    SimdLevel::kAvx2, MatmulAvx2,   MatmulNtAvx2,    SpmmAvx2,
    BiasActAvx2,      ScaleAddAvx2, SpmmBiasActAvx2,
};

}  // namespace

namespace detail {

const KernelTable* Avx2TableOrNull() { return &kAvx2Table; }

}  // namespace detail

}  // namespace gnn4tdl::kernels

#else  // !GNN4TDL_HAVE_AVX2_TU

namespace gnn4tdl::kernels::detail {

const KernelTable* Avx2TableOrNull() { return nullptr; }

}  // namespace gnn4tdl::kernels::detail

#endif  // GNN4TDL_HAVE_AVX2_TU
