#pragma once

#include "common/status.h"
#include "tensor/matrix.h"

namespace gnn4tdl {

/// Cholesky factorization of a symmetric positive-definite matrix: A = L L^T
/// (lower triangular L). Fails if A is not positive definite.
StatusOr<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky; b may have
/// multiple right-hand-side columns.
StatusOr<Matrix> CholeskySolve(const Matrix& a, const Matrix& b);

/// Ridge regression: w = (X^T X + lambda I)^{-1} X^T y. X is n x d, y is
/// n x 1 (or n x m for multiple targets). Always solvable for lambda > 0.
StatusOr<Matrix> SolveRidge(const Matrix& x, const Matrix& y, double lambda);

}  // namespace gnn4tdl
