#include "tensor/linalg.h"

#include <cmath>

#include "common/parallel.h"

namespace gnn4tdl {

StatusOr<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite (pivot " +
              std::to_string(sum) + " at " + std::to_string(i) + ")");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

StatusOr<Matrix> CholeskySolve(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  StatusOr<Matrix> l_or = Cholesky(a);
  if (!l_or.ok()) return l_or.status();
  const Matrix& l = *l_or;
  const size_t n = a.rows();
  const size_t m = b.cols();

  // The factorization itself is serial (loop-carried dependence), but each
  // right-hand-side column solves independently: parallel over columns with
  // the per-column loops unchanged — bit-exact at every thread count. The
  // grain targets ~n^2/2 flops per column so single-RHS solves stay serial.
  const size_t col_grain =
      std::max<size_t>(1, 131072 / std::max<size_t>(n * n, 1));

  // Forward substitution: L z = b.
  Matrix z(n, m);
  ParallelFor(0, m, col_grain, [&](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      for (size_t i = 0; i < n; ++i) {
        double sum = b(i, c);
        for (size_t k = 0; k < i; ++k) sum -= l(i, k) * z(k, c);
        z(i, c) = sum / l(i, i);
      }
    }
  });
  // Back substitution: L^T x = z.
  Matrix x(n, m);
  ParallelFor(0, m, col_grain, [&](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      for (size_t ii = n; ii > 0; --ii) {
        size_t i = ii - 1;
        double sum = z(i, c);
        for (size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x(k, c);
        x(i, c) = sum / l(i, i);
      }
    }
  });
  return x;
}

StatusOr<Matrix> SolveRidge(const Matrix& x, const Matrix& y, double lambda) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("X and y row counts differ");
  }
  if (lambda <= 0.0) {
    return Status::InvalidArgument("ridge lambda must be positive");
  }
  Matrix gram = x.TransposeMatmul(x);
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  Matrix xty = x.TransposeMatmul(y);
  return CholeskySolve(gram, xty);
}

}  // namespace gnn4tdl
