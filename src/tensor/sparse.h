#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace gnn4tdl {

/// A single weighted directed edge row -> col, used when assembling sparse
/// matrices and graphs.
struct Triplet {
  size_t row;
  size_t col;
  double value;
};

/// Immutable sparse matrix in compressed sparse row (CSR) format. This is the
/// message-passing operator of the library: normalized adjacency matrices,
/// bipartite incidence blocks, and hypergraph incidences are all stored as
/// SparseMatrix and applied to dense feature matrices via Multiply().
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// Builds from triplets. Duplicate (row, col) entries are summed. Column
  /// indices within each row are sorted ascending.
  static SparseMatrix FromTriplets(size_t rows, size_t cols,
                                   std::vector<Triplet> triplets);

  /// Builds directly from CSR arrays (row_ptr has rows+1 entries).
  static SparseMatrix FromCsr(size_t rows, size_t cols,
                              std::vector<size_t> row_ptr,
                              std::vector<size_t> col_idx,
                              std::vector<double> values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Sparse-dense product: (this) * dense, dense has cols() rows.
  Matrix Multiply(const Matrix& dense) const;

  /// Transposed product: (this)^T * dense, dense has rows() rows.
  Matrix TransposeMultiply(const Matrix& dense) const;

  /// Transposed copy (CSR of the transpose).
  SparseMatrix Transpose() const;

  /// Dense copy (tests / small matrices only).
  Matrix ToDense() const;

  /// Entry lookup (binary search within the row). Zero if absent.
  double At(size_t row, size_t col) const;

  /// Number of stored entries in `row`.
  size_t RowNnz(size_t row) const {
    GNN4TDL_CHECK_LT(row, rows_);
    return row_ptr_[row + 1] - row_ptr_[row];
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_idx_;
  std::vector<double> values_;
};

/// Segment (edge) softmax: given per-edge logits (e x 1) and each edge's
/// destination group in `seg`, returns max-shifted softmax weights normalized
/// within each group — the attention kernel of GAT-style layers and learned
/// graph construction. Parallelized with per-chunk partial group max/sum
/// arrays folded by a fixed pairwise tree: deterministic for a fixed thread
/// count, bit-exact with the serial kernel when one chunk suffices.
Matrix SegmentSoftmax(const Matrix& logits, const std::vector<size_t>& seg,
                      size_t num_groups);

/// Gradient of SegmentSoftmax w.r.t. the logits: given the forward output
/// `softmax` and upstream gradient `grad` (both e x 1),
///   d l_e = w_e * (g_e - sum_{e' in group(e)} g_{e'} w_{e'}).
/// Same parallelization and determinism contract as the forward kernel.
Matrix SegmentSoftmaxBackward(const Matrix& softmax, const Matrix& grad,
                              const std::vector<size_t>& seg,
                              size_t num_groups);

}  // namespace gnn4tdl
