#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "obs/kernel_hooks.h"

namespace gnn4tdl {

namespace {

// Row-block grain for SpMM-family kernels: each chunk holds roughly this many
// multiply-adds (nnz_in_chunk * dense_cols). Rows vary in nnz, so the grain
// is derived from the average row cost — good enough for the 4x-per-thread
// oversubscription ParallelFor already applies.
size_t SpmmRowGrain(size_t nnz, size_t rows, size_t dense_cols) {
  constexpr size_t kFlopGrain = 65536;
  const size_t avg_row_cost =
      std::max<size_t>(1, (nnz / std::max<size_t>(rows, 1)) * dense_cols);
  return std::max<size_t>(1, kFlopGrain / avg_row_cost);
}

}  // namespace

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    GNN4TDL_CHECK_LT(t.row, rows);
    GNN4TDL_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(triplets[i].col);
    m.values_.push_back(sum);
    m.row_ptr_[triplets[i].row + 1]++;
    i = j;
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromCsr(size_t rows, size_t cols,
                                   std::vector<size_t> row_ptr,
                                   std::vector<size_t> col_idx,
                                   std::vector<double> values) {
  GNN4TDL_CHECK_EQ(row_ptr.size(), rows + 1);
  GNN4TDL_CHECK_EQ(col_idx.size(), values.size());
  GNN4TDL_CHECK_EQ(row_ptr.back(), col_idx.size());
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  GNN4TDL_CHECK_EQ(cols_, dense.rows());
  Matrix out(rows_, dense.cols());
  const size_t n = dense.cols();
  obs::KernelScope kernel(
      "spmm", 2.0 * static_cast<double>(nnz()) * n,
      8.0 * (static_cast<double>(nnz()) * (n + 2) +
             static_cast<double>(rows_) * n));
  // CSR rows are independent: parallel over output-row blocks, each row
  // accumulating in serial k-order — bit-exact for every thread count.
  ParallelFor(0, rows_, SpmmRowGrain(nnz(), rows_, n),
              [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      double* out_row = out.row_data(r);
      for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const double v = values_[k];
        const double* d_row = dense.row_data(col_idx_[k]);
        for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
      }
    }
  });
  return out;
}

Matrix SparseMatrix::TransposeMultiply(const Matrix& dense) const {
  GNN4TDL_CHECK_EQ(rows_, dense.rows());
  const size_t n = dense.cols();
  obs::KernelScope kernel(
      "spmm_t", 2.0 * static_cast<double>(nnz()) * n,
      8.0 * (static_cast<double>(nnz()) * (n + 2) +
             static_cast<double>(cols_) * n));
  // The transpose product scatters into out.row(col_idx), so input rows
  // cannot be split across threads without racing. Instead each chunk of
  // input rows accumulates into its own zeroed partial output, and the
  // partials are folded by a fixed pairwise tree: deterministic for a fixed
  // thread count (chunk boundaries depend only on the pool size), and
  // identical to the serial kernel whenever one chunk suffices. Partials are
  // capped at one per pool lane to bound memory at threads * sizeof(out).
  std::vector<Range> ranges =
      PartitionRange(0, rows_, SpmmRowGrain(nnz(), rows_, n),
                     ThreadPool::Global().num_threads());
  if (ranges.size() <= 1) {
    Matrix out(cols_, n);
    for (size_t r = 0; r < rows_; ++r) {
      const double* d_row = dense.row_data(r);
      for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const double v = values_[k];
        double* out_row = out.row_data(col_idx_[k]);
        for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
      }
    }
    return out;
  }
  std::vector<Matrix> partials(ranges.size());
  ThreadPool::Global().Run(ranges.size(), [&](size_t c) {
    Matrix part(cols_, n);
    for (size_t r = ranges[c].begin; r < ranges[c].end; ++r) {
      const double* d_row = dense.row_data(r);
      for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const double v = values_[k];
        double* out_row = part.row_data(col_idx_[k]);
        for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
      }
    }
    partials[c] = std::move(part);
  });
  TreeCombine(partials, [](Matrix& into, const Matrix& from) {
    double* a = into.data();
    const double* b = from.data();
    const size_t sz = into.size();
    for (size_t i = 0; i < sz; ++i) a[i] += b[i];
  });
  return std::move(partials[0]);
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (size_t r = 0; r < rows_; ++r)
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      triplets.push_back({col_idx_[k], r, values_[k]});
  return FromTriplets(cols_, rows_, std::move(triplets));
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      out(r, col_idx_[k]) += values_[k];
  return out;
}

namespace {

// Grain for per-edge segment kernels: scatter phases cost a handful of flops
// per edge, so chunks hold many edges; below this the per-chunk group arrays
// (num_groups doubles each) would dominate.
constexpr size_t kSegmentGrain = 8192;

// Folds per-edge contributions into per-group accumulators. The scatter is
// racy across threads, so each chunk fills its own group array (initialized
// to `init`) and the arrays are tree-combined with `fold`. One partial per
// pool lane bounds memory at threads * num_groups doubles.
template <typename PerEdge, typename Fold>
std::vector<double> SegmentAccumulate(size_t num_edges, size_t num_groups,
                                      double init, const PerEdge& per_edge,
                                      const Fold& fold) {
  std::vector<Range> ranges =
      PartitionRange(0, num_edges, kSegmentGrain,
                     ThreadPool::Global().num_threads());
  if (ranges.size() <= 1) {
    std::vector<double> acc(num_groups, init);
    for (size_t e = 0; e < num_edges; ++e) per_edge(e, acc);
    return acc;
  }
  std::vector<std::vector<double>> partials(ranges.size());
  ThreadPool::Global().Run(ranges.size(), [&](size_t c) {
    std::vector<double> acc(num_groups, init);
    for (size_t e = ranges[c].begin; e < ranges[c].end; ++e) per_edge(e, acc);
    partials[c] = std::move(acc);
  });
  TreeCombine(partials,
              [&](std::vector<double>& into, const std::vector<double>& from) {
                for (size_t g = 0; g < into.size(); ++g) fold(into[g], from[g]);
              });
  return std::move(partials[0]);
}

}  // namespace

Matrix SegmentSoftmax(const Matrix& logits, const std::vector<size_t>& seg,
                      size_t num_groups) {
  GNN4TDL_CHECK_EQ(logits.cols(), 1u);
  GNN4TDL_CHECK_EQ(logits.rows(), seg.size());
  const size_t e_count = seg.size();
  // ~5 flops per edge across the max/exp/sum/normalize phases.
  obs::KernelScope kernel("segment_softmax", 5.0 * static_cast<double>(e_count),
                          8.0 * (3.0 * e_count + 2.0 * num_groups));
  for (size_t e = 0; e < e_count; ++e) GNN4TDL_CHECK_LT(seg[e], num_groups);

  // Phase 1: per-group max (order-insensitive fold).
  std::vector<double> group_max = SegmentAccumulate(
      e_count, num_groups, -std::numeric_limits<double>::infinity(),
      [&](size_t e, std::vector<double>& acc) {
        acc[seg[e]] = std::max(acc[seg[e]], logits(e, 0));
      },
      [](double& into, double from) { into = std::max(into, from); });

  // Phase 2: shifted exponentials (elementwise, write-disjoint) ...
  Matrix out(e_count, 1);
  ParallelFor(0, e_count, kSegmentGrain, [&](size_t lo, size_t hi) {
    for (size_t e = lo; e < hi; ++e)
      out(e, 0) = std::exp(logits(e, 0) - group_max[seg[e]]);
  });
  // ... and per-group sums (tree-reduced, deterministic per thread count).
  std::vector<double> group_sum = SegmentAccumulate(
      e_count, num_groups, 0.0,
      [&](size_t e, std::vector<double>& acc) { acc[seg[e]] += out(e, 0); },
      [](double& into, double from) { into += from; });

  // Phase 3: normalize (elementwise).
  ParallelFor(0, e_count, kSegmentGrain, [&](size_t lo, size_t hi) {
    for (size_t e = lo; e < hi; ++e) out(e, 0) /= group_sum[seg[e]];
  });
  return out;
}

Matrix SegmentSoftmaxBackward(const Matrix& softmax, const Matrix& grad,
                              const std::vector<size_t>& seg,
                              size_t num_groups) {
  GNN4TDL_CHECK_EQ(softmax.cols(), 1u);
  GNN4TDL_CHECK_EQ(grad.cols(), 1u);
  GNN4TDL_CHECK_EQ(softmax.rows(), seg.size());
  GNN4TDL_CHECK_EQ(grad.rows(), seg.size());
  const size_t e_count = seg.size();
  obs::KernelScope kernel("segment_softmax_bwd",
                          5.0 * static_cast<double>(e_count),
                          8.0 * (4.0 * e_count + num_groups));

  std::vector<double> group_dot = SegmentAccumulate(
      e_count, num_groups, 0.0,
      [&](size_t e, std::vector<double>& acc) {
        acc[seg[e]] += grad(e, 0) * softmax(e, 0);
      },
      [](double& into, double from) { into += from; });

  Matrix out(e_count, 1);
  ParallelFor(0, e_count, kSegmentGrain, [&](size_t lo, size_t hi) {
    for (size_t e = lo; e < hi; ++e)
      out(e, 0) = softmax(e, 0) * (grad(e, 0) - group_dot[seg[e]]);
  });
  return out;
}

double SparseMatrix::At(size_t row, size_t col) const {
  GNN4TDL_CHECK_LT(row, rows_);
  GNN4TDL_CHECK_LT(col, cols_);
  auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[row]);
  auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[row + 1]);
  auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

}  // namespace gnn4tdl
