#include "tensor/sparse.h"

#include <algorithm>

namespace gnn4tdl {

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    GNN4TDL_CHECK_LT(t.row, rows);
    GNN4TDL_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(triplets[i].col);
    m.values_.push_back(sum);
    m.row_ptr_[triplets[i].row + 1]++;
    i = j;
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromCsr(size_t rows, size_t cols,
                                   std::vector<size_t> row_ptr,
                                   std::vector<size_t> col_idx,
                                   std::vector<double> values) {
  GNN4TDL_CHECK_EQ(row_ptr.size(), rows + 1);
  GNN4TDL_CHECK_EQ(col_idx.size(), values.size());
  GNN4TDL_CHECK_EQ(row_ptr.back(), col_idx.size());
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  GNN4TDL_CHECK_EQ(cols_, dense.rows());
  Matrix out(rows_, dense.cols());
  const size_t n = dense.cols();
  for (size_t r = 0; r < rows_; ++r) {
    double* out_row = out.row_data(r);
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const double v = values_[k];
      const double* d_row = dense.row_data(col_idx_[k]);
      for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
    }
  }
  return out;
}

Matrix SparseMatrix::TransposeMultiply(const Matrix& dense) const {
  GNN4TDL_CHECK_EQ(rows_, dense.rows());
  Matrix out(cols_, dense.cols());
  const size_t n = dense.cols();
  for (size_t r = 0; r < rows_; ++r) {
    const double* d_row = dense.row_data(r);
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const double v = values_[k];
      double* out_row = out.row_data(col_idx_[k]);
      for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (size_t r = 0; r < rows_; ++r)
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      triplets.push_back({col_idx_[k], r, values_[k]});
  return FromTriplets(cols_, rows_, std::move(triplets));
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      out(r, col_idx_[k]) += values_[k];
  return out;
}

double SparseMatrix::At(size_t row, size_t col) const {
  GNN4TDL_CHECK_LT(row, rows_);
  GNN4TDL_CHECK_LT(col, cols_);
  auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[row]);
  auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[row + 1]);
  auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

}  // namespace gnn4tdl
