#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/rng.h"

namespace gnn4tdl {

/// Dense row-major matrix of doubles. The single numeric container used by the
/// autograd engine, the GNN layers, and the data pipeline. Deliberately
/// minimal: shapes are fixed at construction, all indexing is bounds-checked
/// via GNN4TDL_CHECK, and all factory methods that draw random numbers take an
/// explicit Rng.
///
/// Storage comes from a DoubleBuffer: heap-backed by default, slab-backed
/// when the constructing thread has an ArenaScope installed (the trainer
/// installs one around the epoch loop — see docs/MEMORY.md). The arena is
/// transparent to every Matrix operation and never changes numerics.
///
/// Threading & determinism contract (see docs/KERNELS.md): the arithmetic,
/// matmul-family, and Map kernels run on the shared ThreadPool (sized by
/// GNN4TDL_THREADS), partitioned over write-disjoint output blocks, so they
/// are bit-exact with serial execution at every thread count. The scalar
/// reductions Sum()/Mean()/Norm() are pairwise tree reductions: deterministic
/// for a fixed thread count, within ~1e-15 relative across thread counts, and
/// exactly the serial sum at threads=1. The Rng-drawing factories and
/// ToString() are always serial. Map()'s callable must be pure — it is
/// invoked concurrently from pool threads.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `value`.
  Matrix(size_t rows, size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// rows x cols matrix initialized from `data` (size must match).
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  // --- Factories -----------------------------------------------------------

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) { return Matrix(rows, cols, 1.0); }
  static Matrix Full(size_t rows, size_t cols, double v) {
    return Matrix(rows, cols, v);
  }
  static Matrix Identity(size_t n);

  /// Entries ~ N(0, stddev^2).
  static Matrix Randn(size_t rows, size_t cols, Rng& rng, double stddev = 1.0);

  /// Entries ~ U[lo, hi).
  static Matrix Rand(size_t rows, size_t cols, Rng& rng, double lo = 0.0,
                     double hi = 1.0);

  /// Glorot/Xavier uniform initialization: U[-a, a], a = sqrt(6/(fan_in+fan_out)).
  static Matrix GlorotUniform(size_t fan_in, size_t fan_out, Rng& rng);

  /// Builds from nested initializer-like rows (for tests).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  // --- Shape & element access ----------------------------------------------

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    GNN4TDL_CHECK_LT(r, rows_);
    GNN4TDL_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    GNN4TDL_CHECK_LT(r, rows_);
    GNN4TDL_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_data(size_t r) { return data_.data() + r * cols_; }
  const double* row_data(size_t r) const { return data_.data() + r * cols_; }

  // --- Elementwise arithmetic (shape-checked) ------------------------------

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  /// Hadamard (elementwise) product.
  Matrix CwiseMul(const Matrix& other) const;
  Matrix CwiseDiv(const Matrix& other) const;
  Matrix operator*(double s) const;
  Matrix operator-() const { return *this * -1.0; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Adds `s * other` in place (axpy).
  void Axpy(double s, const Matrix& other);

  /// Applies `f` to every entry, returning a new matrix.
  Matrix Map(const std::function<double(double)>& f) const;

  // --- Linear algebra -------------------------------------------------------

  /// Matrix product: (r x k) * (k x c) -> (r x c).
  Matrix Matmul(const Matrix& other) const;

  /// this^T * other without materializing the transpose.
  Matrix TransposeMatmul(const Matrix& other) const;

  /// this * other^T without materializing the transpose.
  Matrix MatmulTranspose(const Matrix& other) const;

  Matrix Transpose() const;

  // --- Reductions & row/col ops ---------------------------------------------

  double Sum() const;
  double Mean() const;
  double MaxAbs() const;
  /// Frobenius norm.
  double Norm() const;

  /// Column vector (rows x 1) of row sums.
  Matrix RowSum() const;
  /// Row vector (1 x cols) of column sums.
  Matrix ColSum() const;
  /// Row vector (1 x cols) of column means.
  Matrix ColMean() const;

  /// Index of the maximum entry in row r.
  size_t ArgMaxRow(size_t r) const;

  /// Extracts row r as a 1 x cols matrix.
  Matrix Row(size_t r) const;

  /// Copies the rows listed in `idx` (in order) into a new matrix.
  Matrix GatherRows(const std::vector<size_t>& idx) const;

  /// Concatenates columns: [this | other] (same row count).
  Matrix ConcatCols(const Matrix& other) const;

  /// Concatenates rows: [this ; other] (same column count).
  Matrix ConcatRows(const Matrix& other) const;

  /// Reinterprets the contiguous buffer as new_rows x new_cols
  /// (new_rows * new_cols must equal size()).
  Matrix Reshape(size_t new_rows, size_t new_cols) const;

  /// True if shapes match and entries differ by at most `tol`.
  bool AllClose(const Matrix& other, double tol = 1e-9) const;

  /// Debug string, rows separated by newlines (small matrices only).
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  DoubleBuffer data_;
};

/// Scalar * matrix.
inline Matrix operator*(double s, const Matrix& m) { return m * s; }

}  // namespace gnn4tdl
