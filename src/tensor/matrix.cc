#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/parallel.h"
#include "obs/kernel_hooks.h"

namespace gnn4tdl {

namespace {

// Grain sizes for the parallel kernels (see docs/KERNELS.md). Elementwise
// chunks are at least kElemGrain doubles; row-partitioned kernels size their
// chunks so each holds roughly kFlopGrain multiply-adds. Both are far above
// the pool's per-chunk dispatch cost (~1us) at double-precision speeds.
constexpr size_t kElemGrain = 16384;
constexpr size_t kFlopGrain = 65536;

size_t RowGrain(size_t flops_per_row) {
  return std::max<size_t>(1, kFlopGrain / std::max<size_t>(flops_per_row, 1));
}

}  // namespace

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(data) {
  GNN4TDL_CHECK_EQ(rows_ * cols_, data_.size());
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Randn(size_t rows, size_t cols, Rng& rng, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Normal(0.0, stddev);
  return m;
}

Matrix Matrix::Rand(size_t rows, size_t cols, Rng& rng, double lo, double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::GlorotUniform(size_t fan_in, size_t fan_out, Rng& rng) {
  double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return Rand(fan_in, fan_out, rng, -a, a);
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    GNN4TDL_CHECK_EQ(rows[r].size(), cols);
    std::copy(rows[r].begin(), rows[r].end(), m.row_data(r));
  }
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  const double* b = other.data_.data();
  double* o = out.data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] += b[i];
  });
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  const double* b = other.data_.data();
  double* o = out.data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] -= b[i];
  });
  return out;
}

Matrix Matrix::CwiseMul(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  const double* b = other.data_.data();
  double* o = out.data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] *= b[i];
  });
  return out;
}

Matrix Matrix::CwiseDiv(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  const double* b = other.data_.data();
  double* o = out.data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] /= b[i];
  });
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  double* o = out.data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] *= s;
  });
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  const double* b = other.data_.data();
  double* o = data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] += b[i];
  });
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  const double* b = other.data_.data();
  double* o = data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] -= b[i];
  });
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  double* o = data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] *= s;
  });
  return *this;
}

void Matrix::Axpy(double s, const Matrix& other) {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  const double* b = other.data_.data();
  double* o = data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] += s * b[i];
  });
}

Matrix Matrix::Map(const std::function<double(double)>& f) const {
  // Contract: f is applied concurrently from pool threads, so it must be
  // pure (no shared mutable state; RNG draws go through the serial
  // factories, never Map).
  Matrix out = *this;
  double* o = out.data_.data();
  ParallelFor(0, data_.size(), kElemGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) o[i] = f(o[i]);
  });
  return out;
}

Matrix Matrix::Matmul(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  const size_t k_dim = cols_;
  const size_t n = other.cols_;
  obs::KernelScope kernel(
      "matmul", 2.0 * static_cast<double>(rows_) * k_dim * n,
      8.0 * (static_cast<double>(rows_) * k_dim + k_dim * n + rows_ * n));
  // Parallel over blocks of output rows: each row's accumulation runs in the
  // same i-k-j order as the serial kernel (streams through `other` row-major,
  // friendly to cache), so results are bit-exact for every thread count.
  ParallelFor(0, rows_, RowGrain(k_dim * n), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      double* out_row = out.row_data(i);
      const double* a_row = row_data(i);
      for (size_t k = 0; k < k_dim; ++k) {
        double a = a_row[k];
        if (a == 0.0) continue;
        const double* b_row = other.row_data(k);
        for (size_t j = 0; j < n; ++j) out_row[j] += a * b_row[j];
      }
    }
  });
  return out;
}

Matrix Matrix::TransposeMatmul(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  Matrix out(cols_, other.cols_);
  const size_t n = other.cols_;
  obs::KernelScope kernel(
      "matmul_tn", 2.0 * static_cast<double>(rows_) * cols_ * n,
      8.0 * (static_cast<double>(rows_) * cols_ + rows_ * n + cols_ * n));
  // Parallel over blocks of *output* rows (i indexes this->cols_): every
  // thread scans all input rows r but only touches its own output block, and
  // each out(i, j) accumulates in the same r-ascending order as the serial
  // kernel — write-disjoint and bit-exact for every thread count.
  ParallelFor(0, cols_, RowGrain(rows_ * n), [&](size_t lo, size_t hi) {
    for (size_t r = 0; r < rows_; ++r) {
      const double* a_row = row_data(r);
      const double* b_row = other.row_data(r);
      for (size_t i = lo; i < hi; ++i) {
        double a = a_row[i];
        if (a == 0.0) continue;
        double* out_row = out.row_data(i);
        for (size_t j = 0; j < n; ++j) out_row[j] += a * b_row[j];
      }
    }
  });
  return out;
}

Matrix Matrix::MatmulTranspose(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  obs::KernelScope kernel(
      "matmul_nt", 2.0 * static_cast<double>(rows_) * cols_ * other.rows_,
      8.0 * (static_cast<double>(rows_) * cols_ + other.rows_ * cols_ +
             static_cast<double>(rows_) * other.rows_));
  ParallelFor(0, rows_, RowGrain(other.rows_ * cols_),
              [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const double* a_row = row_data(i);
      double* out_row = out.row_data(i);
      for (size_t j = 0; j < other.rows_; ++j) {
        const double* b_row = other.row_data(j);
        double acc = 0.0;
        for (size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
        out_row[j] = acc;
      }
    }
  });
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  // Parallel over output rows: thread-disjoint writes, strided reads.
  ParallelFor(0, cols_, RowGrain(rows_), [&](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c)
      for (size_t r = 0; r < rows_; ++r) out(c, r) = (*this)(r, c);
  });
  return out;
}

double Matrix::Sum() const {
  // Tree-reduced: deterministic for a fixed thread count; equals the serial
  // left-to-right sum whenever one chunk suffices (threads=1 or small data).
  const double* d = data_.data();
  return ParallelReduceSum(0, data_.size(), kElemGrain,
                           [d](size_t lo, size_t hi) {
                             double s = 0.0;
                             for (size_t i = lo; i < hi; ++i) s += d[i];
                             return s;
                           });
}

double Matrix::Mean() const {
  GNN4TDL_CHECK(!data_.empty());
  return Sum() / static_cast<double>(data_.size());
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::Norm() const {
  const double* d = data_.data();
  double s = ParallelReduceSum(0, data_.size(), kElemGrain,
                               [d](size_t lo, size_t hi) {
                                 double acc = 0.0;
                                 for (size_t i = lo; i < hi; ++i)
                                   acc += d[i] * d[i];
                                 return acc;
                               });
  return std::sqrt(s);
}

Matrix Matrix::RowSum() const {
  Matrix out(rows_, 1);
  // Row-disjoint writes, serial accumulation order per row: bit-exact.
  ParallelFor(0, rows_, RowGrain(cols_), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      double s = 0.0;
      const double* row = row_data(r);
      for (size_t c = 0; c < cols_; ++c) s += row[c];
      out(r, 0) = s;
    }
  });
  return out;
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = row_data(r);
    for (size_t c = 0; c < cols_; ++c) out(0, c) += row[c];
  }
  return out;
}

Matrix Matrix::ColMean() const {
  GNN4TDL_CHECK_GT(rows_, 0u);
  Matrix out = ColSum();
  out *= 1.0 / static_cast<double>(rows_);
  return out;
}

size_t Matrix::ArgMaxRow(size_t r) const {
  GNN4TDL_CHECK_LT(r, rows_);
  GNN4TDL_CHECK_GT(cols_, 0u);
  const double* row = row_data(r);
  size_t best = 0;
  for (size_t c = 1; c < cols_; ++c)
    if (row[c] > row[best]) best = c;
  return best;
}

Matrix Matrix::Row(size_t r) const {
  GNN4TDL_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  std::copy(row_data(r), row_data(r) + cols_, out.data());
  return out;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (size_t i = 0; i < idx.size(); ++i) {
    GNN4TDL_CHECK_LT(idx[i], rows_);
    std::copy(row_data(idx[i]), row_data(idx[i]) + cols_, out.row_data(i));
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(rows_, other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(row_data(r), row_data(r) + cols_, out.row_data(r));
    std::copy(other.row_data(r), other.row_data(r) + other.cols_,
              out.row_data(r) + cols_);
  }
  return out;
}

Matrix Matrix::ConcatRows(const Matrix& other) const {
  GNN4TDL_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_ + other.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data());
  std::copy(other.data_.begin(), other.data_.end(), out.data() + data_.size());
  return out;
}

Matrix Matrix::Reshape(size_t new_rows, size_t new_cols) const {
  GNN4TDL_CHECK_EQ(new_rows * new_cols, data_.size());
  Matrix out(new_rows, new_cols);
  std::copy(data_.begin(), data_.end(), out.data());
  return out;
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ' ';
      os << (*this)(r, c);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace gnn4tdl
